package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// trackInto runs one process's deterministic record stream through a tracker
// on the given store. Every format test replays the identical stream so the
// merged graphs are comparable across codecs. With leaveSegments the tracker
// is drained but not closed, so periodic delta segments stay un-compacted on
// disk (Close would fold them into the canonical file).
func trackInto(t *testing.T, store *Store, pid int, cfg *Config, leaveSegments bool) {
	t.Helper()
	tr := NewTracker(cfg, store, pid)
	user := tr.RegisterUser("alice")
	prog := tr.RegisterProgram("codec.exe", user)
	thr := tr.RegisterThread(pid, prog)
	for i := 0; i < 6; i++ {
		obj := tr.TrackDataObject(model.Dataset,
			fmt.Sprintf("/codec.h5/ts%d/x", i), fmt.Sprintf("/ts%d/x", i), rdf.Term{}, prog)
		tr.TrackIO(model.Write, "H5Dwrite", obj, thr,
			time.Duration(i)*time.Millisecond, 150*time.Microsecond)
	}
	if leaveSegments {
		if err := tr.Drain(); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// canonicalNT is the triple-multiset fingerprint used for cross-format
// graph equality.
func canonicalNT(t *testing.T, g *rdf.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestBinaryStoreRoundTrip runs the full tracker pipeline against a binary
// store and checks the merged graph equals a Turtle store fed the same
// records.
func TestBinaryStoreRoundTrip(t *testing.T) {
	graphs := make(map[Format]*rdf.Graph)
	for _, format := range []Format{FormatTurtle, FormatBinary} {
		view := vfs.NewStore().NewView()
		store, err := NewStore(VFSBackend{View: view}, "/prov", format)
		if err != nil {
			t.Fatal(err)
		}
		for pid := 0; pid < 2; pid++ {
			trackInto(t, store, pid, DefaultConfig(), false)
		}
		g, err := store.Merge()
		if err != nil {
			t.Fatalf("%v store merge: %v", format, err)
		}
		graphs[format] = g

		// The canonical files must carry the codec's extension.
		names, err := store.backend.List("/prov")
		if err != nil {
			t.Fatal(err)
		}
		// Text stores carry a .sum integrity sidecar per file; binary files
		// embed their seal and must not have one.
		wantExt := format.codecOf().Ext()
		for _, n := range names {
			if !strings.HasSuffix(n, wantExt) && !strings.HasSuffix(n, wantExt+chainSidecarExt) {
				t.Errorf("%v store left unexpected file %s", format, n)
			}
		}
	}
	if canonicalNT(t, graphs[FormatBinary]) != canonicalNT(t, graphs[FormatTurtle]) {
		t.Error("binary store merged to a different graph than the Turtle store")
	}
}

// TestMixedFormatMerge is the acceptance pin of the codec layer: a store
// directory holding .ttl, .nt, and .pbs files at once — canonical sub-graphs
// AND un-compacted delta segments — must merge to a triple multiset
// identical to an all-text baseline fed the same records.
func TestMixedFormatMerge(t *testing.T) {
	// Periodic flush with no Close-compaction leaves delta segments behind.
	segCfg := func() *Config {
		cfg := DefaultConfig()
		cfg.Mode = ModePeriodic
		cfg.FlushEvery = 3
		return cfg
	}

	build := func(t *testing.T, formats []Format) *rdf.Graph {
		t.Helper()
		view := vfs.NewStore().NewView()
		for pid, format := range formats {
			store, err := NewStore(VFSBackend{View: view}, "/prov", format)
			if err != nil {
				t.Fatal(err)
			}
			cfg, leaveSegments := DefaultConfig(), false
			if pid%2 == 1 {
				// Odd pids drain without closing: their delta segments stay
				// on disk in their store's segment format.
				cfg, leaveSegments = segCfg(), true
			}
			trackInto(t, store, pid, cfg, leaveSegments)
		}
		// Read the shared directory back with auto-detection.
		reader, err := NewStore(VFSBackend{View: view}, "/prov", FormatAuto)
		if err != nil {
			t.Fatal(err)
		}
		g, err := reader.MergeParallel(4)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	baseline := build(t, []Format{FormatTurtle, FormatTurtle, FormatTurtle})
	mixed := build(t, []Format{FormatTurtle, FormatNTriples, FormatBinary})
	if canonicalNT(t, mixed) != canonicalNT(t, baseline) {
		t.Fatal("mixed .ttl/.nt/.pbs directory merged to a different triple multiset than the all-text baseline")
	}
	if mixed.Len() == 0 {
		t.Fatal("merge produced an empty graph")
	}
}

// TestCompactMigratesTextToBinary: opening a text-format directory with a
// binary store and compacting rewrites the canonical files as .pbs — the
// codec layer's migration path.
func TestCompactMigratesTextToBinary(t *testing.T) {
	view := vfs.NewStore().NewView()
	text, err := NewStore(VFSBackend{View: view}, "/prov", FormatNTriples)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 3
	trackInto(t, text, 0, cfg, true) // leaves un-compacted .nt segments
	before, err := text.Merge()
	if err != nil {
		t.Fatal(err)
	}

	names, _ := text.backend.List("/prov")
	var hadSeg bool
	for _, n := range names {
		if strings.Contains(n, ".seg") {
			hadSeg = true
		}
	}
	if !hadSeg {
		t.Fatal("test setup: expected un-compacted .nt segments")
	}

	bin, err := NewStore(VFSBackend{View: view}, "/prov", FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if err := bin.Compact(); err != nil {
		t.Fatal(err)
	}
	names, _ = bin.backend.List("/prov")
	for _, n := range names {
		if strings.Contains(n, ".seg") {
			t.Errorf("segment %s survived compaction", n)
		}
	}
	data, err := bin.backend.ReadFile("/prov/prov_p000000.pbs")
	if err != nil {
		t.Fatalf("compaction did not produce a .pbs canonical file: %v", err)
	}
	if segcodec.Detect(data).Name() != "pbs" {
		t.Error("compacted canonical file does not carry the pbs magic")
	}
	after, err := bin.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if canonicalNT(t, after) != canonicalNT(t, before) {
		t.Error("text -> binary compaction changed the graph")
	}
}

// TestCompactMigratesCanonicalOnly: a text store with NO pending segments —
// the common provio-merge -format=pbs -compact input — must still have its
// canonical files rewritten to the store codec, with the old-format files
// removed; and a second Compact must be a no-op (idempotent migration).
func TestCompactMigratesCanonicalOnly(t *testing.T) {
	view := vfs.NewStore().NewView()
	text, err := NewStore(VFSBackend{View: view}, "/prov", FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 2; pid++ {
		trackInto(t, text, pid, DefaultConfig(), false) // Close: canonical only
	}
	before, err := text.Merge()
	if err != nil {
		t.Fatal(err)
	}

	bin, err := NewStore(VFSBackend{View: view}, "/prov", FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if err := bin.Compact(); err != nil {
		t.Fatal(err)
	}
	names, _ := bin.backend.List("/prov")
	for _, n := range names {
		if strings.HasSuffix(n, ".ttl") {
			t.Errorf("old-format canonical file %s survived migration", n)
		}
	}
	for pid := 0; pid < 2; pid++ {
		if _, err := bin.backend.ReadFile(fmt.Sprintf("/prov/prov_p%06d.pbs", pid)); err != nil {
			t.Errorf("pid %d: no migrated .pbs canonical file: %v", pid, err)
		}
	}
	after, err := bin.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if canonicalNT(t, after) != canonicalNT(t, before) {
		t.Error("canonical-only migration changed the graph")
	}

	// Idempotence: the files must not change on a second Compact.
	snapshot := make(map[string][]byte)
	for _, n := range names {
		data, _ := bin.backend.ReadFile("/prov/" + n)
		snapshot[n] = data
	}
	if err := bin.Compact(); err != nil {
		t.Fatal(err)
	}
	names2, _ := bin.backend.List("/prov")
	if len(names2) != len(names) {
		t.Fatalf("second Compact changed the file set: %v -> %v", names, names2)
	}
	for _, n := range names2 {
		data, _ := bin.backend.ReadFile("/prov/" + n)
		if !bytes.Equal(data, snapshot[n]) {
			t.Errorf("second Compact rewrote %s", n)
		}
	}
}

// TestFormatAutoDetection pins FormatAuto's directory sniffing: canonical
// file extensions win, segments decide only alone, empty dirs are Turtle.
func TestFormatAutoDetection(t *testing.T) {
	cases := []struct {
		name  string
		files []string
		want  Format
	}{
		{"empty", nil, FormatTurtle},
		{"canonical ttl", []string{"prov_p000000.ttl"}, FormatTurtle},
		{"canonical nt", []string{"prov_p000000.nt"}, FormatNTriples},
		{"canonical pbs", []string{"prov_p000000.pbs"}, FormatBinary},
		{"segment only", []string{"prov_p000000.seg0000.pbs"}, FormatBinary},
		{"canonical wins over segment", []string{"prov_p000000.seg0000.nt", "prov_p000001.pbs"}, FormatBinary},
		{"foreign files ignored", []string{"README.txt", "prov_merged.ttl"}, FormatTurtle},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			view := vfs.NewStore().NewView()
			backend := VFSBackend{View: view}
			if err := backend.MkdirAll("/prov"); err != nil {
				t.Fatal(err)
			}
			for _, f := range tc.files {
				if err := backend.WriteFile("/prov/"+f, nil); err != nil {
					t.Fatal(err)
				}
			}
			store, err := NewStore(backend, "/prov", FormatAuto)
			if err != nil {
				t.Fatal(err)
			}
			if store.Format() != tc.want {
				t.Errorf("detected %v, want %v", store.Format(), tc.want)
			}
		})
	}
}

// TestGoldenMergedBinary pins the canonical .pbs bytes of the golden store:
// the binary serialization of the merged graph must stay stable, and the
// fixture must decode back to the identical graph.
func TestGoldenMergedBinary(t *testing.T) {
	store := buildGoldenStore(t)
	merged, err := store.MergeParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	var pbs bytes.Buffer
	if err := segcodec.Binary.Encode(&pbs, merged, nil); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_merged.pbs", pbs.Bytes())

	decoded := rdf.NewGraph()
	if err := segcodec.Binary.Decode(bytes.NewReader(pbs.Bytes()), decoded); err != nil {
		t.Fatalf("decoding our own golden fixture: %v", err)
	}
	if canonicalNT(t, decoded) != canonicalNT(t, merged) {
		t.Error("golden .pbs fixture does not round-trip to the merged graph")
	}
}

// TestCorruptBinarySegmentSurfacesError mirrors the fault tests for text
// segments: a bit-flipped .pbs file must fail the merge with a parse error
// naming the file, not crash or silently drop triples.
func TestCorruptBinarySegmentSurfacesError(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	trackInto(t, store, 0, DefaultConfig(), false)
	path := "/prov/prov_p000000.pbs"
	data, err := store.backend.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := store.backend.WriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	_, err = store.Merge()
	if err == nil {
		t.Fatal("merge accepted a corrupt binary sub-graph")
	}
	if !strings.Contains(err.Error(), "prov_p000000.pbs") {
		t.Errorf("error %v does not name the corrupt file", err)
	}
}
