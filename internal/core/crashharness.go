package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/hpc-io/prov-io/internal/backend"
	"github.com/hpc-io/prov-io/internal/faultfs"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// The crash-consistency sweep (DESIGN.md "Integrity & fault injection"): a
// deterministic harness that runs a fixed tracking workload against a
// faultfs-wrapped in-memory store, kills it at EVERY mutating-operation
// boundary (optionally with torn variants of the crashing write), then
// recovers with Compact and audits with Verify. The invariant, per crash
// point:
//
//	acknowledged ⊆ recovered ⊆ tracked
//
// where "acknowledged" is what the tracker had confirmed durable (a
// nil-returning Flush or Close) before the crash, "recovered" is the merge
// of the store after Compact, and "tracked" is everything the workload ever
// recorded — i.e. no acknowledged record is lost, nothing appears from
// nowhere (graph set-semantics rule out duplication). When Compact instead
// refuses, the refusal must be verifiable: Verify has to report defects.
// Any other outcome is a Violation.

// CrashSweepConfig parameterizes one sweep. The zero value of Records and
// FlushEvery picks a small workload that still exercises segment writes,
// canonical rewrites, sidecar writes, and segment removal.
type CrashSweepConfig struct {
	Seed       int64
	Format     Format
	Records    int
	FlushEvery int
	// Torn adds prefix-truncated variants of each crashing write (none,
	// half, all-but-one byte), modeling non-atomic filesystems. Without it
	// every crash point is all-or-nothing, which is what the store's own
	// backends guarantee (OSBackend writes via temp file + rename).
	Torn bool
	// Backend selects the substrate under fault injection: "vfs" (the
	// default, the simulated PFS), "mem", "file" (a real on-disk .pvs
	// archive, reopened fresh from disk for recovery so journal replay is in
	// the loop), or "mount" (hot/cold tiers of separate mem backends, so
	// tier routing and fallback run under every crash point). The in-memory
	// substrates model the store's crash-consistency logic, not media
	// durability — their state survives in-object across the simulated
	// restart, exactly as the vfs sweep always has.
	Backend string
}

// CrashSweepReport summarizes a sweep.
type CrashSweepReport struct {
	Ops          int // mutating operations in the crash-free schedule
	Points       int // crash variants exercised
	TornVariants int // variants with a torn crashing write
	Recovered    int // Compact succeeded and every invariant held
	Rejected     int // Compact refused, and Verify confirmed the damage
	Violations   []string
}

func (r *CrashSweepReport) String() string {
	return fmt.Sprintf("crash sweep: %d ops, %d points (%d torn): %d recovered, %d rejected, %d violations",
		r.Ops, r.Points, r.TornVariants, r.Recovered, r.Rejected, len(r.Violations))
}

func (c *CrashSweepConfig) withDefaults() CrashSweepConfig {
	out := *c
	if out.Records <= 0 {
		out.Records = 6
	}
	if out.FlushEvery <= 0 {
		out.FlushEvery = 2
	}
	if out.Backend == "" {
		out.Backend = "vfs"
	}
	return out
}

// newInner builds one fresh substrate of the configured kind, plus a reopen
// function modeling the post-crash restart (for the file backend that means
// replaying the on-disk journal into a brand-new Archive) and a cleanup for
// any host-filesystem scratch state.
func (c CrashSweepConfig) newInner() (inner Backend, reopen func() (Backend, error), cleanup func(), err error) {
	same := func(b Backend) func() (Backend, error) {
		return func() (Backend, error) { return b, nil }
	}
	noop := func() {}
	switch c.Backend {
	case "", "vfs":
		b := VFSBackend{View: vfs.NewStore().NewView()}
		return b, same(b), noop, nil
	case "mem":
		b := backend.NewMem()
		return b, same(b), noop, nil
	case "mount":
		m, merr := backend.NewMount("/prov",
			backend.Tier{Name: "hot", Hot: true, B: backend.NewMem(), Root: "/prov"},
			backend.Tier{Name: "cold", Hot: false, B: backend.NewMem(), Root: "/prov"})
		if merr != nil {
			return nil, nil, nil, merr
		}
		return m, same(m), noop, nil
	case "file":
		dir, derr := os.MkdirTemp("", "provio-crash-*")
		if derr != nil {
			return nil, nil, nil, derr
		}
		path := filepath.Join(dir, "store.pvs")
		a, aerr := backend.OpenArchive(path)
		if aerr != nil {
			os.RemoveAll(dir)
			return nil, nil, nil, aerr
		}
		return a, func() (Backend, error) { return backend.OpenArchive(path) },
			func() { os.RemoveAll(dir) }, nil
	default:
		return nil, nil, nil, fmt.Errorf("core: unknown crash-sweep backend %q (want vfs, mem, file, or mount)", c.Backend)
	}
}

// ntLines renders a graph as its set of N-Triples lines, the record-level
// fingerprint the sweep's invariants compare.
func ntLines(g *rdf.Graph) map[string]bool {
	set := make(map[string]bool)
	if g == nil {
		return set
	}
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		return set
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line != "" {
			set[line] = true
		}
	}
	return set
}

// crashWorkload runs the fixed tracking workload against backend. It returns
// the acknowledged set (the graph at the last nil-returning Flush/Close —
// conservative: deferred async errors surface there too) and the tracked set
// (everything recorded, durable or not). PipelineDelta keeps every store
// write on the tracking goroutine, so the mutating-operation schedule is
// identical on every run and crash points enumerate deterministically.
func crashWorkload(backend Backend, cfg CrashSweepConfig) (acked, tracked map[string]bool) {
	acked = map[string]bool{}
	store, err := NewStore(backend, "/prov", cfg.Format)
	if err != nil {
		return acked, map[string]bool{}
	}
	tcfg := DefaultConfig()
	tcfg.Mode = ModePeriodic
	tcfg.FlushEvery = cfg.FlushEvery
	tcfg.Pipeline = PipelineDelta
	tr := NewTracker(tcfg, store, 0)
	half := cfg.Records / 2
	for i := 0; i < cfg.Records; i++ {
		tr.TrackIO(model.Write, fmt.Sprintf("crash_op_%03d", i), rdf.Term{}, rdf.Term{},
			time.Duration(i)*time.Millisecond, time.Microsecond)
		if i == half {
			// Mid-run durability point: Flush rewrites the canonical file and
			// removes the segments, putting removal boundaries in the sweep.
			if err := tr.Flush(); err == nil {
				acked = ntLines(tr.Graph())
			}
		}
	}
	if err := tr.Close(); err == nil {
		acked = ntLines(tr.Graph())
	}
	return acked, ntLines(tr.Graph())
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// runCrashPoint exercises one crash variant: crash at mutating operation
// `point`, with `torn` bytes of the crashing write persisted. It reports
// whether Compact recovered (as opposed to verifiably rejecting) and a
// non-empty violation when any invariant broke.
func runCrashPoint(cfg CrashSweepConfig, point, torn int) (recovered bool, violation string) {
	cfg = cfg.withDefaults()
	tag := fmt.Sprintf("%v/%s point %d torn %d", cfg.Format, cfg.Backend, point, torn)
	inner, reopen, cleanup, err := cfg.newInner()
	if err != nil {
		return false, fmt.Sprintf("%s: building substrate: %v", tag, err)
	}
	defer cleanup()
	fs := faultfs.New(inner, cfg.Seed).CrashAt(point, torn)
	acked, tracked := crashWorkload(fs, cfg)
	if !fs.Crashed() {
		return false, fmt.Sprintf("%s: crash never fired (%d mutating ops)", tag, fs.Ops())
	}

	// Recovery: reopen the surviving state with a fresh store, compact, audit.
	rinner, err := reopen()
	if err != nil {
		return false, fmt.Sprintf("%s: reopening the substrate: %v", tag, err)
	}
	rstore, err := NewStore(rinner, "/prov", cfg.Format)
	if err != nil {
		return false, fmt.Sprintf("%s: reopening the store: %v", tag, err)
	}
	if cerr := rstore.Compact(); cerr != nil {
		rep, verr := rstore.Verify()
		switch {
		case verr != nil:
			return false, fmt.Sprintf("%s: Verify failed after Compact refusal: %v", tag, verr)
		case rep.Clean():
			return false, fmt.Sprintf("%s: Compact refused (%v) but the store verifies clean", tag, cerr)
		}
		return false, "" // verifiable rejection
	}
	rep, verr := rstore.Verify()
	switch {
	case verr != nil:
		return false, fmt.Sprintf("%s: Verify after recovery: %v", tag, verr)
	case !rep.Clean():
		return false, fmt.Sprintf("%s: recovered store has defects: %v", tag, rep.Defects)
	}
	g, merr := rstore.Merge()
	if merr != nil {
		return false, fmt.Sprintf("%s: merging the recovered store: %v", tag, merr)
	}
	merged := ntLines(g)
	// The recovered bytes must also be reachable out-of-core: a lazy view
	// forced to page every unit through a tiny cache (nothing stays
	// resident, every read re-fetches and re-verifies) has to reproduce the
	// eager merge exactly. This keeps lazy reads inside the sweep's loop at
	// every crash point.
	lv, lerr := rstore.OpenLazy(CacheConfig{MaxBytes: 1})
	if lerr != nil {
		return false, fmt.Sprintf("%s: opening lazy view over recovered store: %v", tag, lerr)
	}
	lg, _, lerr := lv.MaterializeGraph(2)
	if lerr != nil {
		return false, fmt.Sprintf("%s: lazy materialize over recovered store: %v", tag, lerr)
	}
	if lmerged := ntLines(lg); !subset(merged, lmerged) || !subset(lmerged, merged) {
		return false, fmt.Sprintf("%s: lazy view and eager merge disagree after recovery", tag)
	}
	if !subset(acked, merged) {
		return false, fmt.Sprintf("%s: acknowledged records lost (%d acked, %d recovered)",
			tag, len(acked), len(merged))
	}
	if !subset(merged, tracked) {
		return false, fmt.Sprintf("%s: recovered records that were never tracked", tag)
	}
	return true, ""
}

// RunCrashSweep probes the workload's crash-free operation schedule, then
// replays it once per mutating-operation boundary (plus torn variants),
// checking recovery invariants at each. The error covers harness setup only;
// invariant breaks land in the report's Violations.
func RunCrashSweep(cfg CrashSweepConfig) (*CrashSweepReport, error) {
	cfg = cfg.withDefaults()
	probeInner, _, probeCleanup, err := cfg.newInner()
	if err != nil {
		return nil, err
	}
	defer probeCleanup()
	probe := faultfs.New(probeInner, cfg.Seed)
	acked, tracked := crashWorkload(probe, cfg)
	if len(acked) == 0 || !subset(acked, tracked) || !subset(tracked, acked) {
		return nil, fmt.Errorf("core: crash sweep probe run did not acknowledge its full workload")
	}
	var muts []faultfs.Op
	for _, op := range probe.Trace() {
		switch op.Kind {
		case faultfs.OpMkdir, faultfs.OpWrite, faultfs.OpRemove:
			muts = append(muts, op)
		}
	}
	rep := &CrashSweepReport{Ops: len(muts)}
	for k, op := range muts {
		torns := []int{0}
		if cfg.Torn && op.Kind == faultfs.OpWrite && op.Size > 1 {
			torns = append(torns, op.Size/2)
			if op.Size-1 != op.Size/2 {
				torns = append(torns, op.Size-1)
			}
		}
		for _, torn := range torns {
			rep.Points++
			if torn > 0 {
				rep.TornVariants++
			}
			recovered, violation := runCrashPoint(cfg, k, torn)
			switch {
			case violation != "":
				rep.Violations = append(rep.Violations, violation)
			case recovered:
				rep.Recovered++
			default:
				rep.Rejected++
			}
		}
	}
	return rep, nil
}
