package core

import (
	"strconv"
	"strings"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// ReduceLineage extracts the provenance sub-graph relevant to the given
// root nodes: every node reachable from a root within maxHops relation
// edges (traversed in both directions), together with the kept nodes'
// annotation triples (rdf:type, provio:name, memberships, properties).
//
// This is the provenance-reduction optimization the paper's related-work
// section points at (§7): full workflow provenance can reach millions of
// triples, but a lineage question touches a small neighborhood. Reducing
// before visualization keeps Figure-9-style renderings readable, and
// reducing before repeated querying shrinks the search space.
//
// The traversal runs in dictionary-ID space (rdf.ForEachMatchIDs): the BFS
// frontier, visited set, and relation-predicate set all hold uint32 IDs, and
// terms are rehydrated only for the triples copied into the output graph.
// All probes go through one pinned rdf.Snapshot, so the whole BFS costs a
// single graph-lock acquisition and runs against a consistent view even
// while ingest continues.
//
// maxHops <= 0 means unbounded (full connected component).
//
// The closure is memoized on the graph's current snapshot, keyed by
// (roots, maxHops): Graph.Snapshot returns a fresh snapshot (with an empty
// memo) whenever the (watermark, removeEpoch) pair moves, so any Add or
// Remove invalidates every cached closure automatically, exactly like the
// SPARQL result cache. A cached sub-graph is shared between callers and
// must be treated as read-only; use ReduceLineageUncached to obtain a
// private graph or to time the traversal itself.
func ReduceLineage(g *rdf.Graph, roots []rdf.Term, maxHops int) *rdf.Graph {
	snap := g.Snapshot()
	key := lineageMemoKey(roots, maxHops)
	if v, ok := snap.Memo(key); ok {
		if e, ok := v.(lineageEntry); ok && e.watermark == snap.Watermark() && e.removeEpoch == snap.RemoveEpoch() {
			return e.out
		}
	}
	out, _ := reduceLineageKept(g, roots, maxHops)
	snap.SetMemo(key, lineageEntry{watermark: snap.Watermark(), removeEpoch: snap.RemoveEpoch(), out: out})
	return out
}

// ReduceLineageUncached is ReduceLineage without the snapshot memo: every
// call runs the BFS and returns a graph the caller owns. The abl-query
// ablation times this variant so the ID-space-vs-term-space comparison is
// not short-circuited by the cache.
func ReduceLineageUncached(g *rdf.Graph, roots []rdf.Term, maxHops int) *rdf.Graph {
	out, _ := reduceLineageKept(g, roots, maxHops)
	return out
}

// lineageEntry is one memoized lineage closure plus the epochs it was
// computed at (belt to the snapshot-identity keying, as in sparql/cache.go).
type lineageEntry struct {
	watermark   int
	removeEpoch uint64
	out         *rdf.Graph
}

// lineageMemoKey builds the snapshot-memo key for a lineage question. Root
// order is preserved: the closure is order-insensitive, but canonicalizing
// here would buy cache hits only for permuted repeats at the cost of a sort
// per call.
func lineageMemoKey(roots []rdf.Term, maxHops int) string {
	var b strings.Builder
	b.WriteString("lineage\x00")
	b.WriteString(strconv.Itoa(maxHops))
	for _, r := range roots {
		b.WriteByte('\x00')
		b.WriteString(r.String())
	}
	return b.String()
}

// reduceLineageKept is ReduceLineage exposing the kept-node terms alongside
// the reduced graph — the probe set the store's pruned lineage fixpoint
// (Store.ReduceLineagePruned) feeds back into segment-stats probes.
func reduceLineageKept(g *rdf.Graph, roots []rdf.Term, maxHops int) (*rdf.Graph, []rdf.Term) {
	v := g.Snapshot()
	keep := map[rdf.ID]int{}
	var frontier []rdf.ID
	for _, r := range roots {
		if r.IsZero() {
			continue
		}
		id, ok := v.TermID(r)
		if !ok {
			continue // a root absent from the graph has no neighborhood
		}
		keep[id] = 0
		frontier = append(frontier, id)
	}

	relations := lineageRelationIDs(v)
	terms := map[rdf.ID]rdf.Term{}
	termOf := func(id rdf.ID) rdf.Term {
		t, ok := terms[id]
		if !ok {
			t = v.TermOf(id)
			terms[id] = t
		}
		return t
	}

	for len(frontier) > 0 {
		node := frontier[0]
		frontier = frontier[1:]
		depth := keep[node]
		if maxHops > 0 && depth >= maxHops {
			continue
		}
		visit := func(next rdf.ID) {
			if _, seen := keep[next]; seen {
				return
			}
			if t := termOf(next); !t.IsIRI() && !t.IsBlank() {
				return
			}
			keep[next] = depth + 1
			frontier = append(frontier, next)
		}
		v.ForEachMatchIDs(node, rdf.NoID, rdf.NoID, func(_, p, o rdf.ID) bool {
			if relations[p] {
				visit(o)
			}
			return true
		})
		v.ForEachMatchIDs(rdf.NoID, rdf.NoID, node, func(s, p, _ rdf.ID) bool {
			if relations[p] {
				visit(s)
			}
			return true
		})
	}

	out := rdf.NewGraph()
	v.ForEachMatchIDs(rdf.NoID, rdf.NoID, rdf.NoID, func(s, p, o rdf.ID) bool {
		if _, sKept := keep[s]; !sKept {
			return true
		}
		if relations[p] {
			// Relation edges only between kept nodes.
			if _, oKept := keep[o]; oKept {
				out.Add(rdf.Triple{S: termOf(s), P: termOf(p), O: termOf(o)})
			}
			return true
		}
		// Annotation triples (type, name, literals) of kept nodes.
		out.Add(rdf.Triple{S: termOf(s), P: termOf(p), O: termOf(o)})
		return true
	})
	kept := make([]rdf.Term, 0, len(keep))
	for id := range keep {
		kept = append(kept, termOf(id))
	}
	return out, kept
}

// lineageRelationIDs resolves the traversable relation predicates to their
// dictionary IDs in the snapshot. prov:wasMemberOf is classification, not
// lineage — following it would connect every entity through the shared
// super-class nodes; it is kept as an annotation of retained nodes instead.
// Predicates absent from the snapshot are simply omitted.
func lineageRelationIDs(v *rdf.Snapshot) map[rdf.ID]bool {
	relations := map[rdf.ID]bool{}
	add := func(t rdf.Term) {
		if id, ok := v.TermID(t); ok {
			relations[id] = true
		}
	}
	for _, rel := range model.AllRelations() {
		if rel.IRI() == model.WasMemberOf.IRI() {
			continue
		}
		add(rel.IRI())
	}
	for _, rel := range []model.Relation{model.PropType, model.PropConfig, model.PropMetric} {
		add(rel.IRI())
	}
	return relations
}

// ReduceLineageLegacy is the previous term-space implementation of
// ReduceLineage, kept as the ablation baseline for the abl-query benchmark.
// It must stay semantically identical to ReduceLineage.
func ReduceLineageLegacy(g *rdf.Graph, roots []rdf.Term, maxHops int) *rdf.Graph {
	keep := map[rdf.Term]int{}
	frontier := make([]rdf.Term, 0, len(roots))
	for _, r := range roots {
		if r.IsZero() {
			continue
		}
		keep[r] = 0
		frontier = append(frontier, r)
	}

	relations := map[rdf.Term]bool{}
	for _, rel := range model.AllRelations() {
		if rel.IRI() == model.WasMemberOf.IRI() {
			continue
		}
		relations[rel.IRI()] = true
	}
	for _, rel := range []model.Relation{model.PropType, model.PropConfig, model.PropMetric} {
		relations[rel.IRI()] = true
	}

	for len(frontier) > 0 {
		node := frontier[0]
		frontier = frontier[1:]
		depth := keep[node]
		if maxHops > 0 && depth >= maxHops {
			continue
		}
		visit := func(next rdf.Term) {
			if !next.IsIRI() && !next.IsBlank() {
				return
			}
			if _, seen := keep[next]; seen {
				return
			}
			keep[next] = depth + 1
			frontier = append(frontier, next)
		}
		n := node
		g.ForEachMatch(&n, nil, nil, func(t rdf.Triple) bool {
			if relations[t.P] {
				visit(t.O)
			}
			return true
		})
		g.ForEachMatch(nil, nil, &n, func(t rdf.Triple) bool {
			if relations[t.P] {
				visit(t.S)
			}
			return true
		})
	}

	out := rdf.NewGraph()
	g.ForEachMatch(nil, nil, nil, func(t rdf.Triple) bool {
		_, sKept := keep[t.S]
		if !sKept {
			return true
		}
		if relations[t.P] {
			if _, oKept := keep[t.O]; oKept {
				out.Add(t)
			}
			return true
		}
		out.Add(t)
		return true
	})
	return out
}

// MergeStores merges the sub-graphs of several provenance stores — the
// cross-run / cross-workflow provenance the paper's conclusion calls for
// (§8): each run keeps its own store, and GUID-based node identity unifies
// the shared agents, data objects, and configuration records at merge time.
func MergeStores(stores ...*Store) (*rdf.Graph, error) {
	merged := rdf.NewGraph()
	for _, s := range stores {
		g, err := s.Merge()
		if err != nil {
			return nil, err
		}
		merged.Merge(g)
	}
	return merged, nil
}
