package core

import (
	"strings"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// TestRemoveDoesNotRetractFlushedSegments pins a deliberate semantic of the
// append-only delta pipeline (see DESIGN.md, "Ingest path"): Graph.Remove
// retracts a triple from the live in-memory graph only. Delta segments
// already flushed to the store are immutable, and Store.Merge unions the
// canonical file with every segment — so a removed triple that was already
// persisted in a segment reappears in the merged graph. Only a full Flush
// (which rewrites the canonical file from the live graph and deletes the
// segments) makes the retraction durable.
func TestRemoveDoesNotRetractFlushedSegments(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, err := NewStore(VFSBackend{View: view}, "/prov", FormatNTriples)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = ModePeriodic
	cfg.FlushEvery = 1 // every record flushes a delta segment immediately
	cfg.Pipeline = PipelineDelta
	tr := NewTracker(cfg, store, 0)

	prog := tr.RegisterProgram("retract-me", rdf.Term{})
	obj := tr.TrackDataObject(model.File, "/data/victim", "", rdf.Term{}, prog)
	g := tr.Graph()

	// The attribution triple was persisted in the data-object's delta
	// segment by the FlushEvery=1 periodic flush above.
	target := rdf.Triple{S: obj, P: model.WasAttributedTo.IRI(), O: prog}
	if !g.Has(target) {
		t.Fatalf("expected %v in the live graph", target)
	}
	infos, err := view.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, fi := range infos {
		if strings.Contains(fi.Name, ".seg") {
			segs++
		}
	}
	if segs == 0 {
		t.Fatal("expected delta segments on disk before Remove")
	}

	if !g.Remove(target) {
		t.Fatalf("Remove(%v) = false, want true", target)
	}
	if g.Has(target) {
		t.Fatal("triple still present in the live graph after Remove")
	}

	// Merge without flushing: the union of the flushed segments resurrects
	// the removed triple. This is the documented contract, not a bug —
	// segments are append-only.
	merged, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Has(target) {
		t.Fatal("removed triple absent from Merge — segment union semantics changed; update DESIGN.md if intentional")
	}

	// A full Flush rewrites the canonical file from the live graph and
	// removes the segments; only now is the retraction durable.
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	merged, err = store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Has(target) {
		t.Fatal("removed triple survived a full Flush rewrite")
	}
	if !merged.Has(rdf.Triple{S: obj, P: rdf.IRI(rdf.RDFType), O: model.File.IRI()}) {
		t.Fatal("unrelated triple lost by the Flush rewrite")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
