package simclock

import "time"

// CostModel holds the calibrated constants that convert simulated work into
// virtual time. The defaults approximate the paper's testbed: a Lustre file
// system with stripe count 128 and 16 MB stripes behind Haswell compute
// nodes, and a Redland-librdf-class provenance store.
//
// The tracking constants model the paper's C prototype (Redland hash
// indexes, GUID minting, VOL bookkeeping), calibrated once against two of
// the paper's headline ratios (Top Reco ≤0.02%, DASSA attribute-lineage max
// ≈11%) and then held fixed across every experiment. This repository's own
// Go store is considerably faster (see BenchmarkRDFInsert and
// BenchmarkTrackerRecord at the repo root, ~7µs/triple and ~14µs/record);
// those microbenchmarks bound the constants from below, while the modeled
// values reproduce the prototype the paper measured.
type CostModel struct {
	// MetadataLatency is charged per metadata operation (create, open,
	// stat, rename, fsync initiation) — Lustre MDS round trip.
	MetadataLatency time.Duration

	// ReadLatency / WriteLatency are the fixed per-call costs of data
	// operations (client RPC + OST dispatch).
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// ReadBandwidth / WriteBandwidth are per-client streaming rates in
	// bytes per second of virtual time.
	ReadBandwidth  float64
	WriteBandwidth float64

	// StripeCount and StripeSize describe the Lustre layout; files larger
	// than one stripe enjoy parallel OST service up to StripeCount ways.
	StripeCount int
	StripeSize  int64
	// ClientParallelStripes caps how many stripes a single client can
	// drive concurrently (NIC/LNET bound); 0 means unlimited.
	ClientParallelStripes int

	// SharedFilePenalty scales data-op latency when many ranks touch one
	// shared file (lock contention on OSTs); applied per concurrent rank
	// beyond the stripe count.
	SharedFilePenalty float64

	// TrackPerRecord is the fixed cost PROV-IO charges per provenance
	// record (building the record and locking the per-process sub-graph).
	TrackPerRecord time.Duration
	// TrackPerTriple is the marginal cost per RDF triple inserted.
	TrackPerTriple time.Duration
	// TrackLogFactor models the mild growth of in-memory graph insertion
	// cost with graph size (Redland's indexes degrade as the sub-graph
	// grows); charged as log2(graphTriples) * factor per record.
	TrackLogFactor time.Duration
	// TrackerInit is the one-time provenance library + store startup cost
	// (the "latency of Redland" the paper blames for the higher relative
	// overhead of short Top Reco runs).
	TrackerInit time.Duration
	// SerializePerTriple is the cost per triple of Turtle serialization
	// during (asynchronous) flushes.
	SerializePerTriple time.Duration
	// FlushEnqueue is the critical-path cost of handing a delta segment to
	// the asynchronous flush writer (snapshotting the delta and enqueueing
	// it). When the writer's bounded queue is full the hot path additionally
	// stalls until the modeled writer frees a slot (backpressure).
	FlushEnqueue time.Duration
}

// Default returns the calibrated cost model used by all experiments.
func Default() CostModel {
	return CostModel{
		MetadataLatency:       120 * time.Microsecond,
		ReadLatency:           60 * time.Microsecond,
		WriteLatency:          80 * time.Microsecond,
		ReadBandwidth:         1.6e9, // 1.6 GB/s per client
		WriteBandwidth:        1.1e9, // 1.1 GB/s per client
		StripeCount:           128,
		StripeSize:            16 << 20,
		ClientParallelStripes: 6,
		SharedFilePenalty:     0.004,
		TrackPerRecord:        1200 * time.Microsecond,
		TrackPerTriple:        250 * time.Microsecond,
		TrackLogFactor:        25 * time.Microsecond,
		TrackerInit:           150 * time.Millisecond,
		SerializePerTriple:    2 * time.Microsecond,
		FlushEnqueue:          40 * time.Microsecond,
	}
}

// ReadCost models reading n bytes in one call.
func (m CostModel) ReadCost(n int64) time.Duration {
	return m.dataCost(n, m.ReadLatency, m.ReadBandwidth)
}

// WriteCost models writing n bytes in one call.
func (m CostModel) WriteCost(n int64) time.Duration {
	return m.dataCost(n, m.WriteLatency, m.WriteBandwidth)
}

func (m CostModel) dataCost(n int64, lat time.Duration, bw float64) time.Duration {
	if n < 0 {
		n = 0
	}
	if bw <= 0 {
		return lat
	}
	// Large transfers stripe across OSTs: effective bandwidth grows with
	// the number of stripes touched, capped at StripeCount.
	stripes := int64(1)
	if m.StripeSize > 0 {
		stripes = (n + m.StripeSize - 1) / m.StripeSize
	}
	if sc := int64(m.StripeCount); sc > 0 && stripes > sc {
		stripes = sc
	}
	if cp := int64(m.ClientParallelStripes); cp > 0 && stripes > cp {
		stripes = cp
	}
	if stripes < 1 {
		stripes = 1
	}
	eff := bw * float64(stripes)
	return lat + time.Duration(float64(n)/eff*float64(time.Second))
}

// SharedFileCost inflates a base data-op cost for a shared-file workload
// with the given number of concurrently writing ranks.
func (m CostModel) SharedFileCost(base time.Duration, ranks int) time.Duration {
	if ranks <= m.StripeCount || m.SharedFilePenalty <= 0 {
		return base
	}
	excess := float64(ranks - m.StripeCount)
	return base + time.Duration(float64(base)*m.SharedFilePenalty*excess)
}

// TrackCost models inserting one provenance record of nTriples triples.
func (m CostModel) TrackCost(nTriples int) time.Duration {
	if nTriples < 0 {
		nTriples = 0
	}
	return m.TrackPerRecord + time.Duration(nTriples)*m.TrackPerTriple
}

// TrackCostAt is TrackCost plus the graph-size-dependent term for a graph
// that already holds graphTriples triples.
func (m CostModel) TrackCostAt(nTriples, graphTriples int) time.Duration {
	c := m.TrackCost(nTriples)
	if m.TrackLogFactor > 0 && graphTriples > 1 {
		c += time.Duration(log2int(graphTriples)) * m.TrackLogFactor
	}
	return c
}

func log2int(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// SerializeCost models serializing nTriples triples to the store.
func (m CostModel) SerializeCost(nTriples int) time.Duration {
	if nTriples < 0 {
		nTriples = 0
	}
	return time.Duration(nTriples) * m.SerializePerTriple
}
