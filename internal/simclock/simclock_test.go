package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v", c.Now())
	}
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if c.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", c.Now())
	}
}

func TestClockAdvanceIgnoresNegative(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	c.Advance(-10 * time.Second)
	if c.Now() != time.Second {
		t.Errorf("Now = %v, want 1s", c.Now())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Second)
	c.AdvanceTo(5 * time.Second) // must not go backwards
	if c.Now() != 10*time.Second {
		t.Errorf("AdvanceTo moved clock backwards: %v", c.Now())
	}
	c.AdvanceTo(20 * time.Second)
	if c.Now() != 20*time.Second {
		t.Errorf("AdvanceTo did not advance: %v", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Hour)
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset left clock at %v", c.Now())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*per*time.Microsecond {
		t.Errorf("Now = %v, want %v", got, workers*per*time.Microsecond)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	m := Default()
	if m.ReadBandwidth <= 0 || m.WriteBandwidth <= 0 {
		t.Fatal("bandwidths must be positive")
	}
	if m.StripeCount != 128 || m.StripeSize != 16<<20 {
		t.Errorf("Lustre layout = %d x %d, want 128 x 16MB (paper §6.1)", m.StripeCount, m.StripeSize)
	}
	if m.TrackPerRecord <= 0 || m.TrackPerTriple <= 0 {
		t.Error("tracking costs must be positive")
	}
}

func TestReadWriteCostMonotonic(t *testing.T) {
	m := Default()
	sizes := []int64{0, 1, 4096, 1 << 20, 64 << 20, 1 << 30}
	var prevR, prevW time.Duration
	for i, n := range sizes {
		r, w := m.ReadCost(n), m.WriteCost(n)
		if i > 0 && (r < prevR || w < prevW) {
			t.Errorf("cost not monotonic at %d bytes: read %v<%v write %v<%v", n, r, prevR, w, prevW)
		}
		prevR, prevW = r, w
	}
}

func TestCostIncludesLatencyFloor(t *testing.T) {
	m := Default()
	if m.ReadCost(0) < m.ReadLatency {
		t.Errorf("zero-byte read cost %v below latency %v", m.ReadCost(0), m.ReadLatency)
	}
	if m.WriteCost(-5) != m.WriteCost(0) {
		t.Error("negative sizes should clamp to zero")
	}
}

func TestStripingAcceleratesLargeTransfers(t *testing.T) {
	m := Default()
	small := m.ReadCost(m.StripeSize)    // 1 stripe
	big := m.ReadCost(m.StripeSize * 64) // 64 stripes, 64x parallel
	if big > small*64 {
		t.Errorf("striping not applied: 64-stripe read %v vs 1-stripe %v", big, small)
	}
	// Per-byte cost should be lower for the striped read.
	perByteSmall := float64(small-m.ReadLatency) / float64(m.StripeSize)
	perByteBig := float64(big-m.ReadLatency) / float64(m.StripeSize*64)
	if perByteBig >= perByteSmall {
		t.Errorf("striped per-byte cost %v >= unstriped %v", perByteBig, perByteSmall)
	}
}

func TestStripeCountCapsParallelism(t *testing.T) {
	m := Default()
	// Doubling the size beyond full striping should roughly double cost.
	full := int64(m.StripeCount) * m.StripeSize
	c1 := m.ReadCost(full) - m.ReadLatency
	c2 := m.ReadCost(2*full) - m.ReadLatency
	ratio := float64(c2) / float64(c1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("beyond-cap scaling ratio = %.2f, want ~2", ratio)
	}
}

func TestSharedFileCost(t *testing.T) {
	m := Default()
	base := time.Millisecond
	if got := m.SharedFileCost(base, 64); got != base {
		t.Errorf("penalty applied below stripe count: %v", got)
	}
	p1 := m.SharedFileCost(base, 1024)
	p2 := m.SharedFileCost(base, 4096)
	if p1 <= base || p2 <= p1 {
		t.Errorf("penalty not increasing: base=%v p1=%v p2=%v", base, p1, p2)
	}
}

func TestTrackCost(t *testing.T) {
	m := Default()
	if m.TrackCost(0) != m.TrackPerRecord {
		t.Errorf("TrackCost(0) = %v", m.TrackCost(0))
	}
	if m.TrackCost(10) != m.TrackPerRecord+10*m.TrackPerTriple {
		t.Errorf("TrackCost(10) = %v", m.TrackCost(10))
	}
	if m.TrackCost(-1) != m.TrackPerRecord {
		t.Error("negative triple count should clamp")
	}
	if m.SerializeCost(100) != 100*m.SerializePerTriple {
		t.Errorf("SerializeCost(100) = %v", m.SerializeCost(100))
	}
	if m.SerializeCost(-1) != 0 {
		t.Error("negative serialize count should clamp")
	}
}

// Property: data cost is additive-ish — cost(n) <= cost(a)+cost(b) when
// n=a+b (latency paid once instead of twice, striping never hurts).
func TestCostSubadditiveProperty(t *testing.T) {
	m := Default()
	f := func(a, b uint32) bool {
		n := int64(a) + int64(b)
		whole := m.WriteCost(n)
		split := m.WriteCost(int64(a)) + m.WriteCost(int64(b))
		return whole <= split+time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
