// Package simclock provides the virtual-time machinery the reproduction uses
// in place of the paper's Cori testbed. Every simulated MPI rank owns a
// Clock; filesystem, workload, and provenance-tracking code charge modeled
// durations to it, and completion time is read off the clock instead of the
// wall. This makes the Figure 6/8 completion-time ratios deterministic and
// hardware-independent while preserving their shape (see DESIGN.md).
package simclock

import (
	"sync"
	"time"
)

// Clock is a monotonic virtual clock. It is safe for concurrent use, though
// in the MPI simulation each rank normally owns its clock exclusively
// between barriers.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative d is ignored.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t if t is later than now; it never
// moves the clock backwards. Barriers use this to synchronize ranks.
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Reset returns the clock to zero (between experiment repetitions).
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}
