package backend

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
)

// Mount overlays several tiers into one logical store namespace, routing by
// path so hot deltas and compacted history can live on different substrates
// (HyProv's hot-online/queryable-history split). Writes route
// deterministically — delta segments (and their sidecars) to the first hot
// tier, everything else (canonical sub-graphs, merged output) to the first
// cold tier — while reads, stats, and removes fall back across every tier,
// so a mount opened over pre-existing data finds files wherever they
// physically are. List is the union of all tiers.
//
// A successful routed write removes stale same-name copies from the other
// tiers, and Misplaced reports files living outside their routed tier; the
// two together make Store.Compact double as cross-backend migration: mount
// the old substrate as one tier and the new as the other, Compact, and the
// rewritten history lands — and stays — on the new tier.
type Mount struct {
	root  string // logical store root each tier's Root substitutes for
	tiers []Tier
}

// Tier is one mounted substrate.
type Tier struct {
	Name string
	Hot  bool // receives delta-segment writes; cold tiers get the rest
	B    Storage
	// Root is the tier-local path prefix replacing the mount's logical
	// root: logical root + "/x" maps to Root + "/x" inside B.
	Root string
}

// NewMount builds a mount over the logical root. At least one hot and one
// cold tier are required, so every write has a routed home.
func NewMount(root string, tiers ...Tier) (*Mount, error) {
	root = strings.TrimSuffix(root, "/")
	hot, cold := false, false
	for _, t := range tiers {
		if t.Hot {
			hot = true
		} else {
			cold = true
		}
	}
	if !hot || !cold {
		return nil, errors.New("backend: a mount needs at least one hot and one cold tier")
	}
	m := &Mount{root: root, tiers: make([]Tier, len(tiers))}
	copy(m.tiers, tiers)
	for i := range m.tiers {
		m.tiers[i].Root = strings.TrimSuffix(m.tiers[i].Root, "/")
	}
	return m, nil
}

// Tiers returns the mount's tiers in routing order.
func (m *Mount) Tiers() []Tier { return append([]Tier(nil), m.tiers...) }

// rewrite maps a logical path into tier t's namespace.
func (m *Mount) rewrite(t Tier, path string) string {
	if rest, ok := strings.CutPrefix(path, m.root); ok && (rest == "" || strings.HasPrefix(rest, "/")) {
		return t.Root + rest
	}
	return path
}

// isSegmentName reports whether a store file name is a delta segment or a
// segment's integrity sidecar — the hot-routed file class. The ".seg" infix
// is the store's segment naming convention (prov_pNNNNNN.segNNNN.<ext>).
func isSegmentName(name string) bool { return strings.Contains(name, ".seg") }

// route picks the tier a path's writes belong to.
func (m *Mount) route(path string) Tier {
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	hot := isSegmentName(base)
	for _, t := range m.tiers {
		if t.Hot == hot {
			return t
		}
	}
	return m.tiers[0] // unreachable: NewMount guarantees both classes
}

// ordered returns every tier, the routed one first.
func (m *Mount) ordered(path string) []Tier {
	routed := m.route(path)
	out := make([]Tier, 0, len(m.tiers))
	out = append(out, routed)
	for _, t := range m.tiers {
		if t != routed {
			out = append(out, t)
		}
	}
	return out
}

// MkdirAll implements Storage: the directory exists on every tier.
func (m *Mount) MkdirAll(dir string) error {
	for _, t := range m.tiers {
		if err := t.B.MkdirAll(m.rewrite(t, dir)); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile implements Storage: the routed tier takes the write, then stale
// same-name copies on the other tiers are removed, so a file that migrates
// between tiers (a canonical rewrite during cross-backend Compact) never
// shadows its successor.
func (m *Mount) WriteFile(path string, data []byte) error {
	tiers := m.ordered(path)
	if err := tiers[0].B.WriteFile(m.rewrite(tiers[0], path), data); err != nil {
		return err
	}
	for _, t := range tiers[1:] {
		p := m.rewrite(t, path)
		if _, err := t.B.Stat(p); err == nil {
			if err := t.B.Remove(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadFile implements Storage, falling back across tiers.
func (m *Mount) ReadFile(path string) ([]byte, error) {
	var firstErr error
	for _, t := range m.ordered(path) {
		data, err := t.B.ReadFile(m.rewrite(t, path))
		if err == nil {
			return data, nil
		}
		if firstErr == nil || errors.Is(firstErr, fs.ErrNotExist) {
			firstErr = err
		}
	}
	return nil, firstErr
}

// ReadFileRange implements RangeReader, falling back across tiers like
// ReadFile. A tier whose backend lacks the capability serves the range via a
// whole-file read, so the mount's answer never depends on tier composition.
func (m *Mount) ReadFileRange(path string, off, n int64) ([]byte, error) {
	var firstErr error
	for _, t := range m.ordered(path) {
		p := m.rewrite(t, path)
		var data []byte
		var err error
		if rr, ok := t.B.(RangeReader); ok {
			data, err = rr.ReadFileRange(p, off, n)
		} else {
			data, err = t.B.ReadFile(p)
			if err == nil {
				o, c := clampRange(int64(len(data)), off, n)
				data = data[o : o+c]
			}
		}
		if err == nil {
			return data, nil
		}
		if firstErr == nil || errors.Is(firstErr, fs.ErrNotExist) {
			firstErr = err
		}
	}
	return nil, firstErr
}

// Stat implements Storage, falling back across tiers.
func (m *Mount) Stat(path string) (int64, error) {
	var firstErr error
	for _, t := range m.ordered(path) {
		n, err := t.B.Stat(m.rewrite(t, path))
		if err == nil {
			return n, nil
		}
		if firstErr == nil || errors.Is(firstErr, fs.ErrNotExist) {
			firstErr = err
		}
	}
	return 0, firstErr
}

// List implements Storage: the union of every tier's listing. A tier that
// never saw the directory contributes nothing; the directory is missing only
// if no tier has it.
func (m *Mount) List(dir string) ([]string, error) {
	seen := make(map[string]bool)
	found := false
	var firstErr error
	for _, t := range m.tiers {
		names, err := t.B.List(m.rewrite(t, dir))
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		found = true
		for _, n := range names {
			seen[n] = true
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if !found {
		return nil, notExist("list", dir)
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Remove implements Storage: the file is removed from every tier holding a
// copy (stale duplicates included).
func (m *Mount) Remove(path string) error {
	removed := false
	var firstErr error
	for _, t := range m.ordered(path) {
		p := m.rewrite(t, path)
		err := t.B.Remove(p)
		switch {
		case err == nil:
			removed = true
		case !errors.Is(err, fs.ErrNotExist) && firstErr == nil:
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if !removed {
		return notExist("remove", path)
	}
	return nil
}

// Caps implements Storage: the conjunction of the tiers' guarantees —
// the mount is only as atomic or as durable as its weakest tier.
func (m *Mount) Caps() uint32 {
	caps := CapAtomicWrite | CapPersistent
	for _, t := range m.tiers {
		caps &= t.B.Caps()
	}
	return caps
}

// Vacuum forwards to every tier whose backend can reclaim superseded
// container space (the single-file archive's journal); tiers without the
// method are left alone.
func (m *Mount) Vacuum() error {
	for _, t := range m.tiers {
		if v, ok := any(t.B).(interface{ Vacuum() error }); ok {
			if err := v.Vacuum(); err != nil {
				return fmt.Errorf("backend: vacuum tier %s: %w", t.Name, err)
			}
		}
	}
	return nil
}

// Misplaced reports whether a present file lives outside its routed tier —
// the signal Store.Compact uses to treat an otherwise-clean process as
// migration work (rewrite it so the routed tier becomes its home).
func (m *Mount) Misplaced(path string) bool {
	tiers := m.ordered(path)
	if _, err := tiers[0].B.Stat(m.rewrite(tiers[0], path)); err == nil {
		return false
	}
	for _, t := range tiers[1:] {
		if _, err := t.B.Stat(m.rewrite(t, path)); err == nil {
			return true
		}
	}
	return false
}
