// Package backend implements the pluggable storage substrates of the
// provenance store (DESIGN.md "Store backends & mounts"). The store's write
// model is deliberately tiny — whole-file reads and writes of named segment
// files inside one logical directory — which lets the same Store, hash-chain,
// verification, and recovery code run against very different substrates:
//
//   - Dir: a POSIX directory (the paper's "directory on the PFS"), writing
//     atomically via temp file + rename.
//   - Mem: an in-memory namespace, for tests and the hot tier of a mounted
//     store.
//   - Archive: a single-file append-friendly container (.pvs) packing every
//     segment and chain head of a store into one file — the compacted
//     history tier.
//   - Mount: an overlay that routes writes across tiers (hot deltas vs
//     compacted history) so one logical store spans backends.
//
// The package is import-free of internal/core on purpose: core declares the
// structurally identical StoreBackend interface, so these types satisfy it
// without adapters, and internal/faultfs can decorate any of them while
// remaining importable from core itself.
package backend

import (
	"io/fs"
)

// Storage is one provenance-store substrate: a flat namespace of files
// grouped under directories, addressed by slash-separated paths. It is the
// structural twin of core.StoreBackend — keep the two method sets identical.
//
// Contract:
//   - WriteFile replaces the whole file; whether the replacement is atomic
//     is advertised by CapAtomicWrite.
//   - ReadFile and Stat report a missing file with an error satisfying
//     errors.Is(err, fs.ErrNotExist).
//   - List returns the sorted file names (not paths) directly inside dir,
//     erroring if the directory was never created.
//   - Remove fails if the file does not exist.
type Storage interface {
	MkdirAll(dir string) error
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
	List(dir string) ([]string, error)
	Remove(path string) error
	// Stat returns the file's size in bytes.
	Stat(path string) (int64, error)
	// Caps advertises the backend's capability flags (Cap* bits).
	Caps() uint32
}

// Capability flags reported by Storage.Caps. The store itself runs on any
// combination — capabilities inform recovery expectations (an atomic backend
// never produces torn store files on its own; the crash sweep's torn
// variants model the others) and tooling output.
const (
	// CapAtomicWrite: WriteFile is all-or-nothing — via rename (Dir), a
	// CRC-framed journal append (Archive), or trivially (Mem). A crash can
	// lose the write but never expose a torn file.
	CapAtomicWrite uint32 = 1 << iota
	// CapPersistent: data survives process exit.
	CapPersistent
	// CapArchive: the whole namespace lives inside one container file.
	CapArchive
)

// CapsString renders capability bits for tooling output.
func CapsString(caps uint32) string {
	s := ""
	add := func(name string) {
		if s != "" {
			s += ","
		}
		s += name
	}
	if caps&CapAtomicWrite != 0 {
		add("atomic")
	}
	if caps&CapPersistent != 0 {
		add("persistent")
	}
	if caps&CapArchive != 0 {
		add("archive")
	}
	if s == "" {
		s = "none"
	}
	return s
}

// RangeReader is the optional partial-read capability behind lazy segment
// loading (DESIGN.md "Leveled segments & pushdown"): backends that can serve
// a byte extent of a file without materializing the whole file implement it,
// and the store's pruned read paths use it to fetch a pack's header and just
// the members a query needs. Backends (and decorators, such as the fault
// injector) that do not implement it are served by whole-file ReadFile
// fallback — the capability changes I/O volume, never results.
//
// Contract: the returned slice is file[off : min(off+n, size)] — reads
// beyond EOF are clamped, an offset at or past EOF returns an empty slice,
// and a missing file reports fs.ErrNotExist like ReadFile.
type RangeReader interface {
	ReadFileRange(path string, off, n int64) ([]byte, error)
}

// clampRange clamps [off, off+n) to a file of the given size.
func clampRange(size, off, n int64) (int64, int64) {
	if off < 0 {
		off = 0
	}
	if off > size {
		off = size
	}
	if n < 0 || off+n > size {
		n = size - off
	}
	return off, n
}

// notExist returns a *fs.PathError satisfying errors.Is(err, fs.ErrNotExist)
// for the named operation.
func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}
