package backend

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strings"
	"sync"
)

// Archive is the single-file store backend: one append-friendly container
// (.pvs) packing every segment file — and anything else the store writes,
// chain sidecars and merged output included — into a journal of CRC-framed
// records. It is the cold tier of a mounted store and the natural shipping
// format for a compacted history ("give me the provenance" is one file).
//
// Layout:
//
//	"PVS\x01"                                      4-byte magic
//	frame*                                         append-only journal
//
//	frame := op(1) | uvarint(len(path)) | path
//	         | [op==put] uvarint(len(data)) | data
//	         | crc32-IEEE(frame bytes so far, little-endian)
//
// Ops: put (whole-file write), del, mkdir. The newest frame for a path wins,
// so WriteFile is one append — no rewrite of earlier data — and a reopen
// replays the journal into an in-memory index. A torn tail (the last frame
// cut short or failing its CRC, with nothing valid after it) is ignored on
// open and truncated away by the next mutation, which makes WriteFile
// effectively atomic across crashes: a frame either replays whole or not at
// all. Interior damage — an unparseable frame with valid frames behind it —
// is refused at open (see OpenArchive). Superseded frames accumulate until
// Vacuum rewrites the container.
type Archive struct {
	mu   sync.Mutex
	path string // container file on the host filesystem

	files map[string][]byte
	dirs  map[string]bool
	size  int64 // byte offset past the last valid frame
	torn  bool  // container bytes beyond size must be truncated before appending
}

var archiveMagic = []byte("PVS\x01")

// archive ops.
const (
	opPut   = 1
	opDel   = 2
	opMkdir = 3
)

// OpenArchive opens (or prepares to create) the container file at path. A
// missing file is an empty archive — it is created on the first mutation.
// A torn journal tail is tolerated: a crashed append leaves one damaged
// frame at the very end and nothing after it. Damage anywhere else — a bad
// magic, or an unparseable frame with valid frames still behind it — cannot
// be a torn write, so it is refused as corruption rather than silently
// replayed around (dropping the suffix would make a one-byte flip shrink
// the store to a state the audit sees as clean).
func OpenArchive(path string) (*Archive, error) {
	a := &Archive{path: path, files: make(map[string][]byte), dirs: map[string]bool{"/": true}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return a, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) < len(archiveMagic) || string(data[:len(archiveMagic)]) != string(archiveMagic) {
		return nil, fmt.Errorf("backend: %s is not a provenance archive (bad magic)", path)
	}
	off := int64(len(archiveMagic))
	for {
		n, op, p, payload := parseFrame(data[off:])
		if n <= 0 {
			break
		}
		switch op {
		case opPut:
			a.files[p] = payload
		case opDel:
			delete(a.files, p)
		case opMkdir:
			a.mkdir(p)
		}
		off += int64(n)
	}
	// A frame failed to parse. A torn tail is the ONLY damage a crash can
	// produce, and it reaches EOF — if any complete frame still parses past
	// the failure point, the journal is corrupt in the middle, not torn.
	for j := off + 1; j < int64(len(data)); j++ {
		if n, _, _, _ := parseFrame(data[j:]); n > 0 {
			return nil, fmt.Errorf("backend: %s: corrupt journal frame at offset %d (valid frames follow — damage, not a torn tail)", path, off)
		}
	}
	a.size = off
	a.torn = off < int64(len(data))
	return a, nil
}

// Path returns the container file's location on the host filesystem.
func (a *Archive) Path() string { return a.path }

// parseFrame decodes one frame from b, returning its total length (<= 0 when
// b does not start with a complete, CRC-valid frame).
func parseFrame(b []byte) (n int, op byte, path string, payload []byte) {
	if len(b) < 1 {
		return 0, 0, "", nil
	}
	op = b[0]
	if op != opPut && op != opDel && op != opMkdir {
		return 0, 0, "", nil
	}
	i := 1
	plen, w := binary.Uvarint(b[i:])
	if w <= 0 || plen > uint64(len(b)) {
		return 0, 0, "", nil
	}
	i += w
	if uint64(len(b)-i) < plen {
		return 0, 0, "", nil
	}
	path = string(b[i : i+int(plen)])
	i += int(plen)
	if op == opPut {
		dlen, w := binary.Uvarint(b[i:])
		if w <= 0 || dlen > uint64(len(b)) {
			return 0, 0, "", nil
		}
		i += w
		if uint64(len(b)-i) < dlen {
			return 0, 0, "", nil
		}
		payload = append([]byte(nil), b[i:i+int(dlen)]...)
		i += int(dlen)
	}
	if len(b)-i < 4 {
		return 0, 0, "", nil
	}
	if crc32.ChecksumIEEE(b[:i]) != binary.LittleEndian.Uint32(b[i:]) {
		return 0, 0, "", nil
	}
	return i + 4, op, path, payload
}

// encodeFrame renders one journal frame.
func encodeFrame(op byte, path string, payload []byte) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(path)+len(payload)+4)
	buf = append(buf, op)
	buf = binary.AppendUvarint(buf, uint64(len(path)))
	buf = append(buf, path...)
	if op == opPut {
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// appendLocked durably appends one frame, creating the container (magic
// included) on first use and truncating a previously detected torn tail.
// The file handle is opened per call: the archive holds no OS state between
// operations, so a crashed process leaves nothing buffered and a recovery
// tool can reopen the same container immediately. Caller holds a.mu.
func (a *Archive) appendLocked(frame []byte) error {
	f, err := os.OpenFile(a.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if a.size == 0 {
		a.size = int64(len(archiveMagic))
		if _, err := f.WriteAt(archiveMagic, 0); err != nil {
			return err
		}
	}
	if a.torn {
		if err := f.Truncate(a.size); err != nil {
			return err
		}
		a.torn = false
	}
	if _, err := f.WriteAt(frame, a.size); err != nil {
		// Roll the container back to its last good frame so a partial
		// append cannot linger mid-file.
		f.Truncate(a.size)
		return err
	}
	a.size += int64(len(frame))
	return nil
}

func (a *Archive) mkdir(dir string) {
	dir = strings.TrimSuffix(dir, "/")
	for dir != "" && !a.dirs[dir] {
		a.dirs[dir] = true
		i := strings.LastIndex(dir, "/")
		if i <= 0 {
			break
		}
		dir = dir[:i]
	}
}

// MkdirAll implements Storage. Already-recorded directories append nothing,
// so reopening a store does not grow the journal.
func (a *Archive) MkdirAll(dir string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dirs[strings.TrimSuffix(dir, "/")] {
		return nil
	}
	if err := a.appendLocked(encodeFrame(opMkdir, dir, nil)); err != nil {
		return err
	}
	a.mkdir(dir)
	return nil
}

// WriteFile implements Storage.
func (a *Archive) WriteFile(path string, data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.appendLocked(encodeFrame(opPut, path, data)); err != nil {
		return err
	}
	if i := strings.LastIndex(path, "/"); i > 0 {
		a.mkdir(path[:i])
	}
	a.files[path] = append([]byte(nil), data...)
	return nil
}

// ReadFile implements Storage.
func (a *Archive) ReadFile(path string) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	data, ok := a.files[path]
	if !ok {
		return nil, notExist("read", path)
	}
	return append([]byte(nil), data...), nil
}

// ReadFileRange implements RangeReader against the replayed in-memory copy
// (the journal is whole-file framed, so there is no cheaper extent source).
func (a *Archive) ReadFileRange(path string, off, n int64) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	data, ok := a.files[path]
	if !ok {
		return nil, notExist("read", path)
	}
	off, n = clampRange(int64(len(data)), off, n)
	return append([]byte(nil), data[off:off+n]...), nil
}

// List implements Storage.
func (a *Archive) List(dir string) ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	dir = strings.TrimSuffix(dir, "/")
	if !a.dirs[dir] && dir != "" {
		return nil, notExist("list", dir)
	}
	var names []string
	prefix := dir + "/"
	for p := range a.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements Storage.
func (a *Archive) Remove(path string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.files[path]; !ok {
		return notExist("remove", path)
	}
	if err := a.appendLocked(encodeFrame(opDel, path, nil)); err != nil {
		return err
	}
	delete(a.files, path)
	return nil
}

// Stat implements Storage.
func (a *Archive) Stat(path string) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	data, ok := a.files[path]
	if !ok {
		return 0, notExist("stat", path)
	}
	return int64(len(data)), nil
}

// Caps implements Storage.
func (a *Archive) Caps() uint32 { return CapAtomicWrite | CapPersistent | CapArchive }

// Vacuum rewrites the container with exactly one frame per live file and
// directory, dropping every superseded or deleted frame, then atomically
// renames it over the old journal. Store-level Compact folds segments into
// canonical files but appends the results; Vacuum reclaims the journal
// space those rewrites superseded.
func (a *Archive) Vacuum() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	buf := append([]byte(nil), archiveMagic...)
	dirs := make([]string, 0, len(a.dirs))
	for d := range a.dirs {
		if d != "/" && d != "" {
			dirs = append(dirs, d)
		}
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		buf = append(buf, encodeFrame(opMkdir, d, nil)...)
	}
	paths := make([]string, 0, len(a.files))
	for p := range a.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		buf = append(buf, encodeFrame(opPut, p, a.files[p])...)
	}
	tmp := a.path + ".vacuum"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return err
	}
	a.size = int64(len(buf))
	a.torn = false
	return nil
}
