package backend

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// storages returns one instance of every non-mount backend, each rooted so
// the shared contract suite can exercise it under the same logical paths.
func storages(t *testing.T) map[string]Storage {
	t.Helper()
	a, err := OpenArchive(filepath.Join(t.TempDir(), "store.pvs"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMount(MountRoot,
		Tier{Name: "hot", Hot: true, B: NewMem(), Root: MountRoot},
		Tier{Name: "cold", Hot: false, B: NewMem(), Root: MountRoot},
	)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Storage{
		"mem":   NewMem(),
		"file":  a,
		"mount": m,
	}
}

func TestStorageContract(t *testing.T) {
	// Dir gets the same suite via a TempDir root below; the in-memory family
	// shares MountRoot-style absolute paths.
	for name, b := range storages(t) {
		t.Run(name, func(t *testing.T) { contractSuite(t, b, MountRoot) })
	}
	t.Run("dir", func(t *testing.T) { contractSuite(t, Dir{}, filepath.Join(t.TempDir(), "prov")) })
}

func contractSuite(t *testing.T, b Storage, root string) {
	if err := b.MkdirAll(root); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	join := func(name string) string { return root + "/" + name }

	if _, err := b.ReadFile(join("missing")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ReadFile(missing) = %v, want fs.ErrNotExist", err)
	}
	if _, err := b.Stat(join("missing")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat(missing) = %v, want fs.ErrNotExist", err)
	}
	if err := b.Remove(join("missing")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Remove(missing) = %v, want fs.ErrNotExist", err)
	}

	if err := b.WriteFile(join("prov_p000001.nt"), []byte("alpha\n")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := b.WriteFile(join("prov_p000001.seg0001.nt"), []byte("beta\n")); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := b.ReadFile(join("prov_p000001.nt"))
	if err != nil || string(data) != "alpha\n" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if n, err := b.Stat(join("prov_p000001.seg0001.nt")); err != nil || n != 5 {
		t.Fatalf("Stat = %d, %v, want 5", n, err)
	}

	// Overwrite replaces the whole file.
	if err := b.WriteFile(join("prov_p000001.nt"), []byte("gamma\n")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if data, _ := b.ReadFile(join("prov_p000001.nt")); string(data) != "gamma\n" {
		t.Fatalf("after overwrite: %q", data)
	}

	// Every built-in backend implements the optional RangeReader capability;
	// check the clamped-extent contract on each.
	rr, ok := b.(RangeReader)
	if !ok {
		t.Fatalf("%T does not implement RangeReader", b)
	}
	if got, err := rr.ReadFileRange(join("prov_p000001.nt"), 1, 3); err != nil || string(got) != "amm" {
		t.Fatalf("ReadFileRange(1,3) = %q, %v", got, err)
	}
	if got, err := rr.ReadFileRange(join("prov_p000001.nt"), 4, 100); err != nil || string(got) != "a\n" {
		t.Fatalf("ReadFileRange past EOF = %q, %v", got, err)
	}
	if got, err := rr.ReadFileRange(join("prov_p000001.nt"), 99, 5); err != nil || len(got) != 0 {
		t.Fatalf("ReadFileRange at EOF = %q, %v", got, err)
	}
	if _, err := rr.ReadFileRange(join("missing"), 0, 4); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ReadFileRange(missing) = %v, want fs.ErrNotExist", err)
	}

	names, err := b.List(root)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []string{"prov_p000001.nt", "prov_p000001.seg0001.nt"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("List = %v, want %v", names, want)
	}

	if err := b.Remove(join("prov_p000001.seg0001.nt")); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := b.ReadFile(join("prov_p000001.seg0001.nt")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ReadFile(removed) = %v, want fs.ErrNotExist", err)
	}

	// Mutating returned slices must not corrupt the stored copy.
	data, _ = b.ReadFile(join("prov_p000001.nt"))
	for i := range data {
		data[i] = 'X'
	}
	if data, _ := b.ReadFile(join("prov_p000001.nt")); string(data) != "gamma\n" {
		t.Fatalf("stored data aliased caller slice: %q", data)
	}
}

func TestMemListMissingDir(t *testing.T) {
	m := NewMem()
	if _, err := m.List("/never"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("List(uncreated) = %v, want fs.ErrNotExist", err)
	}
}

func TestArchiveReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pvs")
	a, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MkdirAll(MountRoot); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFile(MountRoot+"/a.nt", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFile(MountRoot+"/b.nt", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFile(MountRoot+"/a.nt", []byte("three")); err != nil {
		t.Fatal(err)
	}
	if err := a.Remove(MountRoot + "/b.nt"); err != nil {
		t.Fatal(err)
	}

	re, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if data, err := re.ReadFile(MountRoot + "/a.nt"); err != nil || string(data) != "three" {
		t.Fatalf("replayed a.nt = %q, %v", data, err)
	}
	if _, err := re.ReadFile(MountRoot + "/b.nt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("deleted file resurrected: %v", err)
	}
	names, err := re.List(MountRoot)
	if err != nil || !reflect.DeepEqual(names, []string{"a.nt"}) {
		t.Fatalf("List = %v, %v", names, err)
	}

	// Reopening must not have grown the journal (MkdirAll of an existing dir
	// appends nothing).
	before, _ := os.Stat(path)
	if err := re.MkdirAll(MountRoot); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if before.Size() != after.Size() {
		t.Fatalf("idempotent MkdirAll grew journal: %d -> %d", before.Size(), after.Size())
	}
}

func TestArchiveTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pvs")
	a, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFile(MountRoot+"/a.nt", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	good, _ := os.Stat(path)

	// Simulate a crash mid-append: a torn copy of a frame at the tail.
	frame := encodeFrame(opPut, MountRoot+"/b.nt", []byte("torn away"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenArchive(path)
	if err != nil {
		t.Fatalf("torn tail should not fail open: %v", err)
	}
	if data, err := re.ReadFile(MountRoot + "/a.nt"); err != nil || string(data) != "keep" {
		t.Fatalf("pre-crash data lost: %q, %v", data, err)
	}
	if _, err := re.ReadFile(MountRoot + "/b.nt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("torn frame applied: %v", err)
	}

	// The next mutation truncates the wreckage and lands cleanly.
	if err := re.WriteFile(MountRoot+"/c.nt", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if data, err := re2.ReadFile(MountRoot + "/c.nt"); err != nil || string(data) != "fresh" {
		t.Fatalf("post-recovery write lost: %q, %v", data, err)
	}
	if fi, _ := os.Stat(path); fi.Size() <= good.Size() {
		t.Fatalf("journal did not grow past pre-crash size: %d <= %d", fi.Size(), good.Size())
	}
}

func TestArchiveInteriorCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pvs")
	a, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFile(MountRoot+"/a.nt", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFile(MountRoot+"/b.nt", []byte("second")); err != nil {
		t.Fatal(err)
	}

	// Flip one byte of every non-final frame: valid frames follow the damage,
	// so this is corruption, never a torn tail, and open must refuse rather
	// than silently replay an emptier store.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := int64(len(raw)) - int64(len(encodeFrame(opPut, MountRoot+"/b.nt", []byte("second"))))
	for off := int64(len(archiveMagic)); off < lastFrame; off++ {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenArchive(path); err == nil {
			t.Fatalf("interior flip at offset %d opened cleanly", off)
		}
	}

	// The same flip on the final frame reads as a torn tail (nothing valid
	// follows) and stays recoverable.
	bad := append([]byte(nil), raw...)
	bad[lastFrame+1] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenArchive(path)
	if err != nil {
		t.Fatalf("damaged final frame should open as torn tail: %v", err)
	}
	if data, err := re.ReadFile(MountRoot + "/a.nt"); err != nil || string(data) != "first" {
		t.Fatalf("pre-damage data lost: %q, %v", data, err)
	}
	if _, err := re.ReadFile(MountRoot + "/b.nt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("damaged frame applied: %v", err)
	}
}

func TestArchiveBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pvs")
	if err := os.WriteFile(path, []byte("not an archive"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArchive(path); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("OpenArchive on junk = %v, want bad-magic error", err)
	}
}

func TestArchiveVacuum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.pvs")
	a, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MkdirAll(MountRoot); err != nil {
		t.Fatal(err)
	}
	// Pile up superseded frames.
	for i := 0; i < 20; i++ {
		if err := a.WriteFile(MountRoot+"/a.nt", []byte(strings.Repeat("x", 512))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.WriteFile(MountRoot+"/gone.nt", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := a.Remove(MountRoot + "/gone.nt"); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)
	if err := a.Vacuum(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("Vacuum did not shrink journal: %d -> %d", before.Size(), after.Size())
	}
	// State is intact both live and across a reopen.
	for _, b := range []Storage{a, mustReopen(t, path)} {
		if data, err := b.ReadFile(MountRoot + "/a.nt"); err != nil || len(data) != 512 {
			t.Fatalf("post-vacuum read = %d bytes, %v", len(data), err)
		}
		if _, err := b.ReadFile(MountRoot + "/gone.nt"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("vacuum resurrected deleted file: %v", err)
		}
	}
}

func mustReopen(t *testing.T, path string) *Archive {
	t.Helper()
	a, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testMount(t *testing.T) (*Mount, *Mem, *Mem) {
	t.Helper()
	hot, cold := NewMem(), NewMem()
	m, err := NewMount(MountRoot,
		Tier{Name: "hot", Hot: true, B: hot, Root: "/hot"},
		Tier{Name: "cold", Hot: false, B: cold, Root: "/cold"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MkdirAll(MountRoot); err != nil {
		t.Fatal(err)
	}
	return m, hot, cold
}

func TestMountRouting(t *testing.T) {
	m, hot, cold := testMount(t)
	if err := m.WriteFile(MountRoot+"/prov_p000001.seg0001.nt", []byte("delta")); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile(MountRoot+"/prov_p000001.nt", []byte("canonical")); err != nil {
		t.Fatal(err)
	}
	if _, err := hot.ReadFile("/hot/prov_p000001.seg0001.nt"); err != nil {
		t.Fatalf("segment not routed hot: %v", err)
	}
	if _, err := cold.ReadFile("/cold/prov_p000001.nt"); err != nil {
		t.Fatalf("canonical not routed cold: %v", err)
	}
	// Sidecars follow their file class.
	if err := m.WriteFile(MountRoot+"/prov_p000001.seg0001.sum", []byte("h")); err != nil {
		t.Fatal(err)
	}
	if _, err := hot.ReadFile("/hot/prov_p000001.seg0001.sum"); err != nil {
		t.Fatalf("segment sidecar not routed hot: %v", err)
	}

	names, err := m.List(MountRoot)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"prov_p000001.nt", "prov_p000001.seg0001.nt", "prov_p000001.seg0001.sum"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("union List = %v, want %v", names, want)
	}
}

func TestMountFallbackAndMisplaced(t *testing.T) {
	m, hot, cold := testMount(t)
	// A canonical file sitting on the hot tier (pre-migration layout): reads
	// fall back to it, and it is reported misplaced.
	if err := hot.WriteFile("/hot/prov_p000002.nt", []byte("old home")); err != nil {
		t.Fatal(err)
	}
	if data, err := m.ReadFile(MountRoot + "/prov_p000002.nt"); err != nil || string(data) != "old home" {
		t.Fatalf("fallback read = %q, %v", data, err)
	}
	if n, err := m.Stat(MountRoot + "/prov_p000002.nt"); err != nil || n != 8 {
		t.Fatalf("fallback stat = %d, %v", n, err)
	}
	if !m.Misplaced(MountRoot + "/prov_p000002.nt") {
		t.Fatal("canonical on hot tier not reported misplaced")
	}

	// Writing through the mount homes it and cleans the stale copy.
	if err := m.WriteFile(MountRoot+"/prov_p000002.nt", []byte("new home")); err != nil {
		t.Fatal(err)
	}
	if _, err := hot.ReadFile("/hot/prov_p000002.nt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stale hot copy survived write-through: %v", err)
	}
	if data, _ := cold.ReadFile("/cold/prov_p000002.nt"); string(data) != "new home" {
		t.Fatalf("cold copy = %q", data)
	}
	if m.Misplaced(MountRoot + "/prov_p000002.nt") {
		t.Fatal("homed file still reported misplaced")
	}
	if m.Misplaced(MountRoot + "/never.nt") {
		t.Fatal("absent file reported misplaced")
	}
}

func TestMountRemoveAllTiers(t *testing.T) {
	m, hot, cold := testMount(t)
	// Duplicate copies on both tiers: one Remove clears them all.
	if err := hot.WriteFile("/hot/x.nt", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := cold.WriteFile("/cold/x.nt", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(MountRoot + "/x.nt"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat(MountRoot + "/x.nt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("copy survived Remove: %v", err)
	}
}

func TestMountCaps(t *testing.T) {
	m, _, _ := testMount(t)
	if caps := m.Caps(); caps&CapPersistent != 0 {
		t.Fatalf("mem+mem mount claims persistence: %s", CapsString(caps))
	}
	a, err := OpenArchive(filepath.Join(t.TempDir(), "s.pvs"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMount(MountRoot,
		Tier{Name: "hot", Hot: true, B: Dir{}, Root: t.TempDir()},
		Tier{Name: "cold", Hot: false, B: a, Root: MountRoot},
	)
	if err != nil {
		t.Fatal(err)
	}
	if caps := m2.Caps(); caps != CapAtomicWrite|CapPersistent {
		t.Fatalf("dir+file mount caps = %s", CapsString(caps))
	}
}

func TestNewMountNeedsBothClasses(t *testing.T) {
	if _, err := NewMount(MountRoot, Tier{Hot: true, B: NewMem(), Root: "/a"}); err == nil {
		t.Fatal("hot-only mount accepted")
	}
	if _, err := NewMount(MountRoot, Tier{Hot: false, B: NewMem(), Root: "/a"}); err == nil {
		t.Fatal("cold-only mount accepted")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String(); "" means parse must fail
	}{
		{"dir:/prov", "dir:/prov"},
		{"/prov", "dir:/prov"},
		{"prov-out", "dir:prov-out"},
		{"mem:", "mem:"},
		{"file:/prov.pvs", "file:/prov.pvs"},
		{"mount:hot=mem:,cold=file:/prov.pvs", "mount:hot=mem:,cold=file:/prov.pvs"},
		{"mount:hot=dir:/fast,cold=dir:/slow", "mount:hot=dir:/fast,cold=dir:/slow"},
		{" dir:/prov ", "dir:/prov"},
		{"", ""},
		{"dir:", ""},
		{"file:", ""},
		{"mem:/x", ""},
		{"bogus:/x", ""},
		{"mount:hot=mem:", ""},
		{"mount:cold=mem:", ""},
		{"mount:hot=mem:,cold=mem:,hot=mem:", ""},
		{"mount:hot=mount:hot=mem:,cold=mem:,cold=mem:", ""},
		{"mount:tepid=mem:,cold=mem:", ""},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got.String(), c.want)
		}
	}
}

func TestSpecOpen(t *testing.T) {
	dir := t.TempDir()
	b, root, err := Open("dir:" + dir)
	if err != nil || root != dir {
		t.Fatalf("dir open: root=%q err=%v", root, err)
	}
	if _, ok := b.(Dir); !ok {
		t.Fatalf("dir spec opened %T", b)
	}

	b, root, err = Open("mem:")
	if err != nil || root != MountRoot {
		t.Fatalf("mem open: root=%q err=%v", root, err)
	}
	if _, ok := b.(*Mem); !ok {
		t.Fatalf("mem spec opened %T", b)
	}

	pvs := filepath.Join(dir, "s.pvs")
	b, root, err = Open("file:" + pvs)
	if err != nil || root != MountRoot {
		t.Fatalf("file open: root=%q err=%v", root, err)
	}
	if a, ok := b.(*Archive); !ok || a.Path() != pvs {
		t.Fatalf("file spec opened %T", b)
	}

	b, root, err = Open("mount:hot=mem:,cold=file:" + pvs)
	if err != nil || root != MountRoot {
		t.Fatalf("mount open: root=%q err=%v", root, err)
	}
	m, ok := b.(*Mount)
	if !ok {
		t.Fatalf("mount spec opened %T", b)
	}
	tiers := m.Tiers()
	if len(tiers) != 2 || !tiers[0].Hot || tiers[1].Hot {
		t.Fatalf("mount tiers = %+v", tiers)
	}
}
