package backend

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// Dir stores provenance in a directory of the host filesystem — the paper's
// "directory on the parallel file system". Paths are ordinary OS paths; the
// store's directory is whatever root the spec ("dir:/path") named.
type Dir struct{}

// MkdirAll implements Storage.
func (Dir) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// dirTmpSeq disambiguates concurrent atomic writes to the same target.
var dirTmpSeq atomic.Uint64

// WriteFile implements Storage. The write is atomic: data lands in a
// temporary file in the target's directory and is renamed over the target,
// so a crash mid-write can never expose a half-written store file on a real
// filesystem (rename is atomic on POSIX). The torn-write scenarios the
// integrity harness injects model pre-fix filesystems and non-atomic
// backends.
func (Dir) WriteFile(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp%d", path, dirTmpSeq.Add(1))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile implements Storage.
func (Dir) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadFileRange implements RangeReader via pread, so a pruned scan of a
// large pack touches only the header extent and matched members.
func (Dir) ReadFileRange(path string, off, n int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	off, n = clampRange(fi.Size(), off, n)
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// Remove implements Storage.
func (Dir) Remove(path string) error { return os.Remove(path) }

// List implements Storage.
func (Dir) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements Storage.
func (Dir) Stat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Caps implements Storage.
func (Dir) Caps() uint32 { return CapAtomicWrite | CapPersistent }
