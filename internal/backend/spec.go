package backend

import (
	"fmt"
	"strings"
)

// MountRoot is the logical store directory used whenever a backend has no
// host-filesystem root of its own (mem:, file:, mount: specs). Dir stores
// keep using their real path so existing on-disk layouts stay addressable.
const MountRoot = "/prov"

// Spec is a parsed store spec string. Parsing is pure — no backend is opened
// and no I/O happens — so config validation can reject a bad spec without
// touching storage; Open constructs the backend it describes.
//
// Grammar:
//
//	dir:/path          directory store (also the schemeless default:
//	                   a bare path means dir:)
//	mem:               in-memory store
//	file:/path.pvs     single-file archive store
//	mount:hot=SPEC,cold=SPEC
//	                   two-tier mounted store; SPEC is any non-mount spec
//	                   (tier paths therefore cannot contain commas)
type Spec struct {
	Scheme string // "dir", "mem", "file", or "mount"
	Path   string // dir root or archive file; empty for mem and mount
	Hot    *Spec  // mount tiers
	Cold   *Spec
}

// ParseSpec parses a store spec string. It performs no I/O.
func ParseSpec(s string) (Spec, error) {
	return parseSpec(s, true)
}

func parseSpec(s string, allowMount bool) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("backend: empty store spec")
	}
	scheme, rest, ok := strings.Cut(s, ":")
	if !ok {
		// A bare path is a directory store.
		return Spec{Scheme: "dir", Path: s}, nil
	}
	switch scheme {
	case "dir":
		if rest == "" {
			return Spec{}, fmt.Errorf("backend: store spec %q: dir: needs a path", s)
		}
		return Spec{Scheme: "dir", Path: rest}, nil
	case "mem":
		if rest != "" {
			return Spec{}, fmt.Errorf("backend: store spec %q: mem: takes no path", s)
		}
		return Spec{Scheme: "mem"}, nil
	case "file":
		if rest == "" {
			return Spec{}, fmt.Errorf("backend: store spec %q: file: needs an archive path", s)
		}
		return Spec{Scheme: "file", Path: rest}, nil
	case "mount":
		if !allowMount {
			return Spec{}, fmt.Errorf("backend: store spec %q: mounts cannot nest", s)
		}
		return parseMount(s, rest)
	default:
		// Unknown "scheme" is most likely a path with a colon in it; only
		// reject when it looks like a scheme attempt (all lowercase letters).
		if isSchemeLike(scheme) {
			return Spec{}, fmt.Errorf("backend: store spec %q: unknown scheme %q (want dir, mem, file, or mount)", s, scheme)
		}
		return Spec{Scheme: "dir", Path: s}, nil
	}
}

func isSchemeLike(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

func parseMount(full, rest string) (Spec, error) {
	spec := Spec{Scheme: "mount"}
	for _, part := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("backend: store spec %q: mount part %q is not key=spec", full, part)
		}
		sub, err := parseSpec(val, false)
		if err != nil {
			return Spec{}, err
		}
		switch key {
		case "hot":
			if spec.Hot != nil {
				return Spec{}, fmt.Errorf("backend: store spec %q: duplicate hot tier", full)
			}
			spec.Hot = &sub
		case "cold":
			if spec.Cold != nil {
				return Spec{}, fmt.Errorf("backend: store spec %q: duplicate cold tier", full)
			}
			spec.Cold = &sub
		default:
			return Spec{}, fmt.Errorf("backend: store spec %q: unknown mount tier %q (want hot or cold)", full, key)
		}
	}
	if spec.Hot == nil || spec.Cold == nil {
		return Spec{}, fmt.Errorf("backend: store spec %q: a mount needs both hot= and cold= tiers", full)
	}
	return spec, nil
}

// String renders the spec back to its canonical spec-string form.
func (s Spec) String() string {
	switch s.Scheme {
	case "mem":
		return "mem:"
	case "mount":
		return "mount:hot=" + s.Hot.String() + ",cold=" + s.Cold.String()
	default:
		return s.Scheme + ":" + s.Path
	}
}

// Open constructs the backend the spec describes and returns it together
// with the logical store directory to pass to the store layer. Directory
// stores keep their on-disk path as the store directory; every other scheme
// uses MountRoot.
func (s Spec) Open() (Storage, string, error) {
	switch s.Scheme {
	case "dir":
		return Dir{}, strings.TrimSuffix(s.Path, "/"), nil
	case "mem":
		return NewMem(), MountRoot, nil
	case "file":
		a, err := OpenArchive(s.Path)
		if err != nil {
			return nil, "", err
		}
		return a, MountRoot, nil
	case "mount":
		hot, err := s.Hot.tier("hot", true)
		if err != nil {
			return nil, "", err
		}
		cold, err := s.Cold.tier("cold", false)
		if err != nil {
			return nil, "", err
		}
		m, err := NewMount(MountRoot, hot, cold)
		if err != nil {
			return nil, "", err
		}
		return m, MountRoot, nil
	default:
		return nil, "", fmt.Errorf("backend: cannot open store spec with scheme %q", s.Scheme)
	}
}

// tier opens one mount tier; the tier's root inside its own backend is the
// backend's natural store directory.
func (s *Spec) tier(name string, hot bool) (Tier, error) {
	b, root, err := s.Open()
	if err != nil {
		return Tier{}, err
	}
	return Tier{Name: name, Hot: hot, B: b, Root: root}, nil
}

// Open parses and opens a store spec string in one step.
func Open(spec string) (Storage, string, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, "", err
	}
	return s.Open()
}
