package backend

import (
	"sort"
	"strings"
	"sync"
)

// Mem is an in-memory Storage: the hot tier of a mounted store, and the
// cheapest substrate for tests and benchmarks. Contents die with the
// process — a mounted store keeps only unacknowledged-rewritable state
// (delta segments that Compact folds into the cold tier) there.
type Mem struct {
	mu    sync.RWMutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{files: make(map[string][]byte), dirs: map[string]bool{"/": true}}
}

// MkdirAll implements Storage.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mkdirLocked(dir)
	return nil
}

func (m *Mem) mkdirLocked(dir string) {
	dir = strings.TrimSuffix(dir, "/")
	for dir != "" && !m.dirs[dir] {
		m.dirs[dir] = true
		i := strings.LastIndex(dir, "/")
		if i <= 0 {
			break
		}
		dir = dir[:i]
	}
}

// WriteFile implements Storage.
func (m *Mem) WriteFile(path string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i := strings.LastIndex(path, "/"); i > 0 {
		m.mkdirLocked(path[:i])
	}
	m.files[path] = append([]byte(nil), data...)
	return nil
}

// ReadFile implements Storage.
func (m *Mem) ReadFile(path string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[path]
	if !ok {
		return nil, notExist("read", path)
	}
	return append([]byte(nil), data...), nil
}

// ReadFileRange implements RangeReader against the in-memory copy.
func (m *Mem) ReadFileRange(path string, off, n int64) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[path]
	if !ok {
		return nil, notExist("read", path)
	}
	off, n = clampRange(int64(len(data)), off, n)
	return append([]byte(nil), data[off:off+n]...), nil
}

// List implements Storage.
func (m *Mem) List(dir string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	dir = strings.TrimSuffix(dir, "/")
	if !m.dirs[dir] && dir != "" {
		return nil, notExist("list", dir)
	}
	var names []string
	prefix := dir + "/"
	for p := range m.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements Storage.
func (m *Mem) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return notExist("remove", path)
	}
	delete(m.files, path)
	return nil
}

// Stat implements Storage.
func (m *Mem) Stat(path string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.files[path]
	if !ok {
		return 0, notExist("stat", path)
	}
	return int64(len(data)), nil
}

// Caps implements Storage.
func (m *Mem) Caps() uint32 { return CapAtomicWrite }
