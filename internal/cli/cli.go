// Package cli is the store-opening plumbing shared by the provio command
// line tools: one place that resolves the -store flag (a spec string; a bare
// directory path stays a valid alias for dir:) together with the store
// format name, so every tool accepts every backend and their help text stays
// in sync.
package cli

import (
	"fmt"

	"github.com/hpc-io/prov-io/internal/core"
)

// StoreUsage is the shared help text of the -store flag.
const StoreUsage = "provenance store: a directory, or a spec — dir:/path | mem: | file:/store.pvs | mount:hot=SPEC,cold=SPEC"

// FormatUsage is the shared help text of the store-format flags.
const FormatUsage = "store codec: auto | nt | ttl | pbs (reads auto-detect per file)"

// OpenStore opens the store a tool's -store and format flags name. The empty
// spec is rejected (-store is required everywhere); the format name goes
// through core.ParseFormat.
func OpenStore(spec, format string) (*core.Store, error) {
	if spec == "" {
		return nil, fmt.Errorf("-store is required")
	}
	f, err := core.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	return core.OpenStore(spec, f)
}
