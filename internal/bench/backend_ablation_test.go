package bench

import (
	"encoding/json"
	"testing"
)

func TestAblationBackend(t *testing.T) {
	rep := run(t, "abl-backend")
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want one per backend kind", len(rep.Rows))
	}
	var storeBytes []float64
	for _, row := range rep.Rows {
		name := row[0]
		if row[1] == "" || row[1] == "none" {
			t.Errorf("%s: no capability flags reported", name)
		}
		storeBytes = append(storeBytes, parseNum(t, row[3]))
	}
	// Every backend holds the same logical store, so TotalBytes must agree.
	for i, n := range storeBytes {
		if n <= 0 || n != storeBytes[0] {
			t.Errorf("row %d: store bytes %v, want %v on every backend", i, n, storeBytes[0])
		}
	}
	if rep.ArtifactName != "BENCH_backend.json" {
		t.Fatalf("artifact name %q", rep.ArtifactName)
	}
	var doc struct {
		Live []struct {
			Backend     string `json:"backend"`
			MediaBytes  int64  `json:"media_bytes"`
			MediaAfter  int64  `json:"media_bytes_after_vacuum"`
			Merged      int    `json:"merged_triples"`
			CleanVerify bool   `json:"verify_clean"`
		} `json:"live_ablation"`
	}
	if err := json.Unmarshal([]byte(rep.Artifact), &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(doc.Live) != 4 {
		t.Fatalf("live rows = %d, want 4", len(doc.Live))
	}
	for _, row := range doc.Live {
		if !row.CleanVerify {
			t.Errorf("%s: Verify not clean", row.Backend)
		}
		if row.Merged <= 0 || row.Merged != doc.Live[0].Merged {
			t.Errorf("%s: merged %d triples, want %d on every backend", row.Backend, row.Merged, doc.Live[0].Merged)
		}
		switch row.Backend {
		case "mem":
			if row.MediaBytes != 0 {
				t.Errorf("mem: media bytes %d, want 0 (nothing physical)", row.MediaBytes)
			}
		case "file", "mount":
			if row.MediaBytes <= 0 {
				t.Errorf("%s: no archive footprint measured", row.Backend)
			}
			// Compact can grow the cold archive (hot segments fold into its
			// canonicals), so only a live post-vacuum footprint is asserted.
			if row.MediaAfter <= 0 {
				t.Errorf("%s: no post-vacuum archive footprint measured", row.Backend)
			}
		}
	}
}
