package bench

import (
	"encoding/json"
	"testing"
)

func TestAblationIntegrity(t *testing.T) {
	rep := run(t, "abl-integrity")
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want one per codec", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		codec := row[0]
		if parseNum(t, row[2]) <= 0 {
			t.Errorf("%s: no seal bytes measured", codec)
		}
		overhead := parsePercent(t, row[3])
		if overhead <= 0 || overhead >= 50 {
			t.Errorf("%s: seal overhead %.1f%% outside (0, 50)", codec, overhead)
		}
		points, recovered, rejected := parseNum(t, row[5]), parseNum(t, row[6]), parseNum(t, row[7])
		if row[8] != "0" {
			t.Errorf("%s: crash sweep reported %s violations", codec, row[8])
		}
		if points == 0 || recovered+rejected != points {
			t.Errorf("%s: %v points but %v recovered + %v rejected", codec, points, recovered, rejected)
		}
	}
	if rep.ArtifactName != "BENCH_integrity.json" {
		t.Fatalf("artifact name %q", rep.ArtifactName)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(rep.Artifact), &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if _, ok := doc["live_ablation"]; !ok {
		t.Error("artifact missing live_ablation section")
	}
}
