package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// Chart renders the report's numeric columns as horizontal ASCII bars, one
// group per row — a terminal rendition of the paper's bar figures. Columns
// whose cells parse as numbers (percent signs allowed) become series; the
// first column provides the group labels. Reports without numeric columns
// (the descriptive tables) return "".
func (r *Report) Chart() string {
	type series struct {
		name string
		vals []float64
	}
	var plots []series
	for c := 1; c < len(r.Columns); c++ {
		vals := make([]float64, 0, len(r.Rows))
		ok := true
		for _, row := range r.Rows {
			if c >= len(row) {
				ok = false
				break
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[c], "%"), 64)
			if err != nil {
				ok = false
				break
			}
			vals = append(vals, v)
		}
		if ok && len(vals) > 0 {
			plots = append(plots, series{name: r.Columns[c], vals: vals})
		}
	}
	if len(plots) == 0 {
		return ""
	}

	var maxV float64
	for _, p := range plots {
		for _, v := range p.vals {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	const width = 46
	var b strings.Builder
	fmt.Fprintf(&b, "%s (bar = value, full scale %.3g)\n", r.Title, maxV)
	nameW := 0
	for _, p := range plots {
		if len(p.name) > nameW {
			nameW = len(p.name)
		}
	}
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%s\n", row[0])
		for _, p := range plots {
			n := int(p.vals[i] / maxV * width)
			if n < 1 && p.vals[i] > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s |%s %.4g\n", nameW, p.name, strings.Repeat("█", n), p.vals[i])
		}
	}
	return b.String()
}
