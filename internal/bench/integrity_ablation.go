package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/rdf/segcodec"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// AblationIntegrity measures what the hash-chained integrity layer (DESIGN.md
// "Integrity & fault injection") costs and what it buys. Cost: the seal bytes
// riding on each store file (the embedded chain frame for .pbs, the .sum
// sidecar for text codecs) and the wall time of a full Verify audit. Benefit:
// the crash-consistency sweep — every mutating-operation boundary of a fixed
// workload, with torn-write variants — must end in either a verified recovery
// or a verifiable rejection, never a silent loss.
//
// The report's artifact is BENCH_integrity.json: per-codec seal overhead and
// audit latency plus the full crash-sweep outcome. The acceptance gate (zero
// sweep violations; the exhaustive bit-flip and truncation matrices in
// internal/core/verify_test.go detect 100% with no false positives) runs in
// the test suite, not here; this runner records the live numbers.
func AblationIntegrity(s Scale) (*Report, error) {
	nFiles, recordsPer := 8, 24
	if s == ScalePaper {
		nFiles, recordsPer = 32, 96
	}

	r := &Report{
		ID:      "abl-integrity",
		Title:   "Ablation: hash-chained integrity (seal overhead, audit, crash sweep)",
		Columns: []string{"codec", "store bytes", "seal bytes", "overhead", "verify(ms)", "crash points", "recovered", "rejected", "violations"},
		Notes: []string{
			fmt.Sprintf("%d per-process sub-graphs x %d records; canonical roots from Close plus a periodic delta run left as sealed segments", nFiles, recordsPer),
			"seal bytes: embedded chain frames on .pbs, .sum sidecars for text codecs; overhead is seal/store",
			"crash sweep: workload killed at every mutating-op boundary incl. torn-write variants; each point must recover verifiably or reject verifiably",
			"acceptance (0 violations, 100% tamper-matrix detection) is enforced by internal/core tests; these are the live numbers",
		},
		ArtifactName: "BENCH_integrity.json",
	}

	type liveRow struct {
		Codec       string `json:"codec"`
		StoreBytes  int64  `json:"store_bytes"`
		SealBytes   int64  `json:"seal_bytes"`
		Overhead    string `json:"seal_overhead"`
		VerifyMs    string `json:"verify_ms"`
		CrashPoints int    `json:"crash_points"`
		TornPoints  int    `json:"crash_points_torn"`
		Recovered   int    `json:"recovered"`
		Rejected    int    `json:"rejected"`
		Violations  int    `json:"violations"`
	}
	var live []liveRow
	for _, f := range []struct {
		name   string
		format core.Format
	}{{"nt", core.FormatNTriples}, {"ttl", core.FormatTurtle}, {"pbs", core.FormatBinary}} {
		backend, store, err := integrityAblationStore(f.format, nFiles, recordsPer)
		if err != nil {
			return nil, err
		}
		total, err := store.TotalBytes()
		if err != nil {
			return nil, err
		}
		seal, err := integritySealBytes(backend, "/prov")
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := store.Verify()
		if err != nil {
			return nil, err
		}
		verify := time.Since(start)
		if !rep.Clean() {
			return nil, fmt.Errorf("bench: freshly written %s store failed Verify: %v", f.name, rep.Defects)
		}
		sweep, err := core.RunCrashSweep(core.CrashSweepConfig{Seed: 1, Format: f.format, Torn: true})
		if err != nil {
			return nil, err
		}
		overhead := fmt.Sprintf("%.1f%%", 100*float64(seal)/float64(total))
		r.AddRow(f.name, fmt.Sprintf("%d", total), fmt.Sprintf("%d", seal), overhead,
			fmt.Sprintf("%.2f", float64(verify.Microseconds())/1e3),
			itoa(sweep.Points), itoa(sweep.Recovered), itoa(sweep.Rejected), itoa(len(sweep.Violations)))
		live = append(live, liveRow{f.name, total, seal, overhead,
			fmt.Sprintf("%.2f", float64(verify.Microseconds())/1e3),
			sweep.Points, sweep.TornVariants, sweep.Recovered, sweep.Rejected, len(sweep.Violations)})
		if n := len(sweep.Violations); n > 0 {
			r.Notes = append(r.Notes, fmt.Sprintf("VIOLATIONS (%s): %s", f.name, strings.Join(sweep.Violations, "; ")))
		}
	}

	doc := struct {
		Experiment string            `json:"experiment"`
		Workload   map[string]int    `json:"workload"`
		Live       []liveRow         `json:"live_ablation"`
		Acceptance map[string]string `json:"acceptance"`
	}{
		Experiment: "abl-integrity: hash-chained segment seals, Verify audit, crash-consistency sweep",
		Workload:   map[string]int{"files": nFiles, "records_per_file": recordsPer},
		Live:       live,
		Acceptance: map[string]string{
			"crash_sweep":   "every crash point recovers verifiably or rejects verifiably (0 violations), enforced by TestCrashSweep under -race",
			"tamper_matrix": "exhaustive single-bit-flip and strict-prefix truncation over every store file: 100% detection (local Verify or heads-anchored), 0 false positives, enforced by TestVerifyFlipMatrix / TestVerifyTruncationMatrix",
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.Artifact = string(out) + "\n"
	return r, nil
}

// integrityAblationStore writes the shared workload through one codec and
// leaves both sealed canonical roots (from Close) and sealed delta segments
// (from an un-compacted periodic run) on disk, so the seal-overhead numbers
// cover every file shape the chain produces.
func integrityAblationStore(format core.Format, nFiles, recordsPer int) (core.Backend, *core.Store, error) {
	backend := core.VFSBackend{View: vfs.NewStore().NewView()}
	store, err := core.NewStore(backend, "/prov", format)
	if err != nil {
		return nil, nil, err
	}
	for pid := 0; pid < nFiles; pid++ {
		tr := core.NewTracker(core.DefaultConfig(), store, pid)
		user := tr.RegisterUser("shared-user")
		prog := tr.RegisterProgram("shared-program", user)
		for i := 0; i < recordsPer; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/shared/f%d", i%16), "", rdf.Term{}, prog)
			tr.TrackIO(model.Write, "write", obj, prog, time.Duration(i)*time.Microsecond, 0)
		}
		if err := tr.Close(); err != nil {
			return nil, nil, err
		}
	}
	// A second, periodic run on pid 0 leaves sealed segments behind (Drain
	// flushes without folding them into the canonical file).
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModePeriodic
	cfg.FlushEvery = 4
	tr := core.NewTracker(cfg, store, 0)
	for i := 0; i < recordsPer; i++ {
		tr.TrackIO(model.Read, fmt.Sprintf("reread_%03d", i), rdf.Term{}, rdf.Term{}, 0, 0)
	}
	if err := tr.Drain(); err != nil {
		return nil, nil, err
	}
	return backend, store, nil
}

// integritySealBytes totals the integrity metadata in dir: whole .sum
// sidecars, plus the embedded chain frame on binary segments (file size minus
// its StripChain payload).
func integritySealBytes(backend core.Backend, dir string) (int64, error) {
	names, err := backend.List(dir)
	if err != nil {
		return 0, err
	}
	var seal int64
	for _, name := range names {
		data, err := backend.ReadFile(dir + "/" + name)
		if err != nil {
			return 0, err
		}
		switch {
		case strings.HasSuffix(name, ".sum"):
			seal += int64(len(data))
		case strings.Contains(name, ".pbs"):
			seal += int64(len(data) - len(segcodec.StripChain(data)))
		}
	}
	return seal, nil
}
