// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§6), each returning a Report whose rows mirror
// the series the paper plots. cmd/provio-bench and the repository-root
// benchmarks drive these runners.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Report is the rendered result of one experiment.
type Report struct {
	ID    string
	Title string
	// Columns and Rows form the data table.
	Columns []string
	Rows    [][]string
	// Notes carry the paper's expected shape and any caveats.
	Notes []string
	// Artifact is an optional generated document (e.g. Figure 9's DOT).
	Artifact string
	// ArtifactName names the artifact file.
	ArtifactName string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Render formats the report as an aligned text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Formatting helpers shared by the runners.

func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

func fmtPercent(base, tracked time.Duration) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f%%", 100*float64(tracked-base)/float64(base))
}

func fmtKB(b int64) string {
	return fmt.Sprintf("%.1f", float64(b)/1024)
}

func fmtMB(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
