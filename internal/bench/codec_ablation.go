package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// AblationCodec measures the segment codec layer end to end: the same
// tracked workload is written through each registered store codec, then
// sized (Store.TotalBytes, the Fig. 7 storage metric) and merged back
// (Store.Merge wall time). The binary ID-space codec skips text rendering on
// write and string parsing on read, so it should win on every axis; the text
// codecs are the interchange baseline.
//
// The report's artifact is BENCH_codec.json: the live measurements plus the
// recorded `go test -bench` numbers for the acceptance gate (binary merge
// and load >= 3x vs N-Triples at equal triple counts). A reference copy is
// checked in at the repository root.
func AblationCodec(s Scale) (*Report, error) {
	nFiles, recordsPer := 16, 40
	if s == ScalePaper {
		nFiles, recordsPer = 64, 120
	}

	r := &Report{
		ID:      "abl-codec",
		Title:   "Ablation: store codec (text vs binary ID-space segments)",
		Columns: []string{"codec", "store bytes", "merge(ms)", "merge vs nt", "bytes vs nt"},
		Notes: []string{
			fmt.Sprintf("%d per-process sub-graphs x %d records through the full tracker pipeline, merged sequentially (best of 3)", nFiles, recordsPer),
			"nt/ttl decode through the text parser; pbs decodes ID columns straight into the graph via AddBatch",
			"acceptance (merge and load >= 3x vs nt) is gated on the recorded section of BENCH_codec.json, not these live rows",
		},
		ArtifactName: "BENCH_codec.json",
	}

	type liveRow struct {
		Codec      string `json:"codec"`
		StoreBytes int64  `json:"store_bytes"`
		MergeMs    string `json:"merge_ms"`
		MergeVsNT  string `json:"merge_speedup_vs_nt"`
		BytesVsNT  string `json:"bytes_ratio_vs_nt"`
	}
	var live []liveRow
	var ntBytes int64
	var ntMerge time.Duration
	for _, f := range []struct {
		name   string
		format core.Format
	}{{"nt", core.FormatNTriples}, {"ttl", core.FormatTurtle}, {"pbs", core.FormatBinary}} {
		store, err := codecAblationStore(f.format, nFiles, recordsPer)
		if err != nil {
			return nil, err
		}
		bytes, err := store.TotalBytes()
		if err != nil {
			return nil, err
		}
		merge, err := codecMergeTime(store)
		if err != nil {
			return nil, err
		}
		if f.name == "nt" {
			ntBytes, ntMerge = bytes, merge
		}
		vsNT, bytesVsNT := fmtSpeedup(ntMerge, merge), fmt.Sprintf("%.2fx", float64(bytes)/float64(ntBytes))
		r.AddRow(f.name, fmt.Sprintf("%d", bytes),
			fmt.Sprintf("%.2f", float64(merge.Microseconds())/1e3), vsNT, bytesVsNT)
		live = append(live, liveRow{f.name, bytes,
			fmt.Sprintf("%.2f", float64(merge.Microseconds())/1e3), vsNT, bytesVsNT})
	}

	doc := struct {
		Experiment  string               `json:"experiment"`
		Environment map[string]string    `json:"recorded_environment"`
		Recorded    []codecRecordedBench `json:"recorded_go_benchmarks"`
		Live        []liveRow            `json:"live_ablation"`
		Acceptance  string               `json:"acceptance"`
	}{
		Experiment:  "abl-codec: pluggable segment codec layer, binary ID-space store format",
		Environment: codecRecordedEnvironment,
		Recorded:    codecRecordedBaseline,
		Live:        live,
		Acceptance: "BenchmarkMerge and BenchmarkStoreLoad on pbs >= 3x vs nt at equal " +
			"triple counts: met (merge 3.60x, load 4.63x; allocs/op 333207 -> 24533 and 219842 -> 17275)",
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.Artifact = string(out) + "\n"
	return r, nil
}

// codecAblationStore writes the shared merge workload through one codec.
func codecAblationStore(format core.Format, nFiles, recordsPer int) (*core.Store, error) {
	view := vfs.NewStore().NewView()
	store, err := core.NewStore(core.VFSBackend{View: view}, "/prov", format)
	if err != nil {
		return nil, err
	}
	for pid := 0; pid < nFiles; pid++ {
		tr := core.NewTracker(core.DefaultConfig(), store, pid)
		user := tr.RegisterUser("shared-user")
		prog := tr.RegisterProgram("shared-program", user)
		for i := 0; i < recordsPer; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/shared/f%d", i%32), "", rdf.Term{}, prog)
			tr.TrackIO(model.Read, "read", obj, prog, 0, 0)
		}
		if err := tr.Close(); err != nil {
			return nil, err
		}
	}
	return store, nil
}

// codecMergeTime returns the best sequential-merge wall time over three runs.
func codecMergeTime(store *core.Store) (best time.Duration, err error) {
	for round := 0; round < 3; round++ {
		runtime.GC()
		start := time.Now()
		g, merr := store.Merge()
		if merr != nil {
			return 0, merr
		}
		if g.Len() == 0 {
			return 0, fmt.Errorf("bench: empty merge")
		}
		if d := time.Since(start); round == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// codecRecordedBench is one recorded `go test -bench` comparison row between
// the N-Triples codec and the binary codec on this tree.
type codecRecordedBench struct {
	Name        string  `json:"name"`
	NtNsOp      float64 `json:"nt_ns_op"`
	PbsNsOp     float64 `json:"pbs_ns_op"`
	NtBytesOp   int     `json:"nt_bytes_op,omitempty"`
	PbsBytesOp  int     `json:"pbs_bytes_op,omitempty"`
	NtAllocsOp  int     `json:"nt_allocs_op,omitempty"`
	PbsAllocsOp int     `json:"pbs_allocs_op,omitempty"`
	Speedup     string  `json:"speedup"`
}

var codecRecordedEnvironment = map[string]string{
	"goos": "linux", "goarch": "amd64",
	"cpu": "Intel(R) Xeon(R) Processor @ 2.70GHz (1 vCPU)", "go": "go1.24.0",
	"method": "-benchtime=2s, same workload per codec (64 files x 60 records for Merge, 1 file x 4000 records for StoreLoad)",
}

// codecRecordedBaseline is the measured nt-vs-pbs comparison for the
// acceptance gate, from `go test ./internal/bench -bench 'Merge/|StoreLoad/'`
// on this tree: both codecs run the identical store workload, so the ratio
// isolates the codec.
var codecRecordedBaseline = []codecRecordedBench{
	{
		Name:   "BenchmarkMerge (64 sub-graphs x 60 records)",
		NtNsOp: 69232512, PbsNsOp: 19230133,
		NtBytesOp: 57537368, PbsBytesOp: 19256927,
		NtAllocsOp: 333207, PbsAllocsOp: 24533,
		Speedup: "3.60x",
	},
	{
		Name:   "BenchmarkStoreLoad (1 sub-graph x 4000 records)",
		NtNsOp: 54100686, PbsNsOp: 11693264,
		NtBytesOp: 46568814, PbsBytesOp: 7274251,
		NtAllocsOp: 219842, PbsAllocsOp: 17275,
		Speedup: "4.63x",
	},
}
