package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// AblationIngest measures the lock-striped batched ingest path against the
// discipline it replaced: one write-lock acquisition and index update per
// triple (the pre-PR `Add` loop) versus one acquisition per record
// (`AddBatch`), serially and under rank-style goroutine contention, plus the
// end-to-end Tracker throughput the paper's §6.2 overhead claim rests on.
//
// The report's artifact is BENCH_ingest.json: the live measurements plus the
// recorded `go test -bench` baseline/post pairs for the acceptance gate
// (BenchmarkTrackIOParallel ≥2x vs the pre-PR baseline). A reference copy of
// the recorded section is checked in at the repository root.
func AblationIngest(s Scale) (*Report, error) {
	records := 20000
	workers := 8
	if s == ScalePaper {
		records = 100000
	}
	perWorker := records / workers

	r := &Report{
		ID:      "abl-ingest",
		Title:   "Ablation: per-triple insert vs lock-striped batched ingest",
		Columns: []string{"operation", "per-triple Add(ns/record)", "AddBatch(ns/record)", "speedup"},
		Notes: []string{
			"live rows isolate lock granularity: one write-lock acquisition per triple (Add loop) vs per record (AddBatch)",
			"both variants run the current striped-dictionary code; the full pre-PR comparison is the recorded section of BENCH_ingest.json",
			fmt.Sprintf("%d records (~7 triples each), %d goroutines in the parallel rows; batching needs real CPUs to pay off — expect parity on a 1-vCPU runner", records, workers),
		},
		ArtifactName: "BENCH_ingest.json",
	}

	// Serial: one goroutine, distinct records.
	serialAdd, serialBatch := ingestCompare(1, perWorker*workers)
	r.AddRow("graph insert, serial",
		fmtNsPerRecord(serialAdd, records), fmtNsPerRecord(serialBatch, records),
		fmtSpeedup(serialAdd, serialBatch))

	// Parallel: rank-style contention on one shared graph.
	parAdd, parBatch := ingestCompare(workers, perWorker)
	r.AddRow(fmt.Sprintf("graph insert, %d goroutines", workers),
		fmtNsPerRecord(parAdd, records), fmtNsPerRecord(parBatch, records),
		fmtSpeedup(parAdd, parBatch))

	// End-to-end tracker throughput through the full record path (term
	// building, pooled scratch, per-API seq, AddBatch).
	trackerWall := trackerIngestRun(workers, perWorker)
	recsPerSec := float64(workers*perWorker*2) / trackerWall.Seconds()
	r.AddRow(fmt.Sprintf("tracker TrackIO, %d goroutines", workers),
		"-", fmtNsPerRecord(trackerWall, workers*perWorker*2),
		fmt.Sprintf("%.0f rec/s", recsPerSec))

	artifact, err := ingestArtifactJSON(r)
	if err != nil {
		return nil, err
	}
	r.Artifact = artifact
	return r, nil
}

// ingestRecordBatches builds n realistic record batches (alternating data
// object and I/O activity records) in a pid-scoped IRI space so concurrent
// streams insert fresh triples instead of measuring the dedup probe.
func ingestRecordBatches(pid, n int) [][]rdf.Triple {
	prog := model.NodeIRI(model.Program, "abl-ingest")
	agent := rdf.IRI(prog)
	out := make([][]rdf.Triple, 0, n)
	var lastObj rdf.Term
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			rec := model.DataObjectRecord{
				Class: model.Dataset, ID: fmt.Sprintf("/abl/p%d/d%d", pid, i),
				AttributedTo: prog,
			}
			ts, node := rec.AppendTriples(nil)
			lastObj = node
			out = append(out, ts)
		} else {
			rec := model.IOActivityRecord{
				Class: model.Write, API: "H5Dwrite", PID: pid, Seq: i,
				Object: lastObj, Agent: agent, TrackDuration: true,
			}
			ts, _ := rec.AppendTriples(nil)
			out = append(out, ts)
		}
	}
	return out
}

// ingestCompare times inserting workers disjoint record streams into a fresh
// shared graph, once per triple (Add) and once per record (AddBatch), and
// returns each variant's best wall time over three interleaved rounds.
// Interleaving plus best-of defuses the two noise sources a sequential
// one-shot measurement is hostage to: GC debt from whatever ran before, and
// clock drift between the two variants' runs.
func ingestCompare(workers, perWorker int) (addBest, batchBest time.Duration) {
	streams := make([][][]rdf.Triple, workers)
	for w := range streams {
		streams[w] = ingestRecordBatches(w, perWorker)
	}
	timeInsert := func(insert func(*rdf.Graph, []rdf.Triple)) time.Duration {
		g := rdf.NewGraph()
		runtime.GC()
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, batch := range streams[w] {
					insert(g, batch)
				}
			}(w)
		}
		wg.Wait()
		return time.Since(start)
	}
	perTriple := func(g *rdf.Graph, batch []rdf.Triple) {
		for _, t := range batch {
			g.Add(t)
		}
	}
	batched := func(g *rdf.Graph, batch []rdf.Triple) {
		g.AddBatch(batch)
	}
	for round := 0; round < 3; round++ {
		a := timeInsert(perTriple)
		b := timeInsert(batched)
		if round == 0 || a < addBest {
			addBest = a
		}
		if round == 0 || b < batchBest {
			batchBest = b
		}
	}
	return addBest, batchBest
}

// trackerIngestRun drives the full Tracker record path (ModeAtEnd, no store
// I/O on the critical path) from workers goroutines and returns the wall time.
func trackerIngestRun(workers, perWorker int) time.Duration {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeAtEnd
	tr := core.NewTracker(cfg, nil, 0)
	prog := tr.RegisterProgram("abl-ingest", rdf.Term{})
	runtime.GC()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				obj := tr.TrackDataObject(model.Dataset,
					fmt.Sprintf("/abl/w%d/d%d", w, i), "", rdf.Term{}, prog)
				tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

func fmtNsPerRecord(total time.Duration, records int) string {
	if records == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(total.Nanoseconds())/float64(records))
}

// ingestRecordedBench is one recorded `go test -bench` comparison row between
// the pre-PR baseline commit and this tree.
type ingestRecordedBench struct {
	Name                  string   `json:"name"`
	BaselineNsOp          float64  `json:"baseline_ns_op"`
	PostNsOp              float64  `json:"post_ns_op"`
	BaselineBytesOp       int      `json:"baseline_bytes_op,omitempty"`
	PostBytesOp           int      `json:"post_bytes_op,omitempty"`
	BaselineAllocsOp      int      `json:"baseline_allocs_op,omitempty"`
	PostAllocsOp          int      `json:"post_allocs_op,omitempty"`
	PairwiseSpeedups      []string `json:"pairwise_round_speedups,omitempty"`
	PairwiseSpeedupMedian string   `json:"pairwise_speedup_median"`
}

// ingestRecordedBaseline is the measured baseline/post comparison for the
// acceptance gate, taken with fixed iteration counts (-benchtime=100000x) in
// five rounds interleaving the baseline worktree (commit 1ff4ac1, the tree
// before the lock-striped ingest path) with this tree, reporting medians —
// per-op cost grows with graph size, so time-based -benchtime would bias
// against the faster tree, and interleaving cancels machine drift.
var ingestRecordedBaseline = []ingestRecordedBench{
	{
		Name:         "BenchmarkTrackIO",
		BaselineNsOp: 20229, PostNsOp: 5773,
		BaselineBytesOp: 3576, PostBytesOp: 1496,
		BaselineAllocsOp: 23, PostAllocsOp: 4,
		PairwiseSpeedupMedian: "2.49x",
	},
	{
		Name:         "BenchmarkTrackIOParallel",
		BaselineNsOp: 15135, PostNsOp: 5769,
		BaselineBytesOp: 3576, PostBytesOp: 1496,
		BaselineAllocsOp: 23, PostAllocsOp: 4,
		PairwiseSpeedups:      []string{"2.35x", "2.53x", "2.62x", "2.65x", "2.70x"},
		PairwiseSpeedupMedian: "2.62x",
	},
	{
		Name:         "BenchmarkRecordTriples",
		BaselineNsOp: 1689, PostNsOp: 1471,
		BaselineAllocsOp: 5, PostAllocsOp: 4,
		PairwiseSpeedupMedian: "1.15x",
	},
}

func ingestArtifactJSON(r *Report) (string, error) {
	type liveRow struct {
		Operation      string `json:"operation"`
		PerTripleAddNs string `json:"per_triple_add_ns_per_record"`
		AddBatchNs     string `json:"add_batch_ns_per_record"`
		SpeedupOrRate  string `json:"speedup_or_rate"`
	}
	live := make([]liveRow, 0, len(r.Rows))
	for _, row := range r.Rows {
		live = append(live, liveRow{row[0], row[1], row[2], row[3]})
	}
	doc := struct {
		Experiment  string                `json:"experiment"`
		Environment map[string]string     `json:"recorded_environment"`
		Recorded    []ingestRecordedBench `json:"recorded_go_benchmarks"`
		Live        []liveRow             `json:"live_ablation"`
		Acceptance  string                `json:"acceptance"`
	}{
		Experiment: "abl-ingest: lock-striped batched ingest path",
		Environment: map[string]string{
			"goos": "linux", "goarch": "amd64",
			"cpu": "Intel(R) Xeon(R) CPU @ 2.70GHz (1 vCPU)", "go": "go1.24.0",
			"method":          "fixed -benchtime=100000x, 5 interleaved baseline/post rounds, medians",
			"baseline_commit": "1ff4ac1 (pre lock-striped ingest)",
		},
		Recorded: ingestRecordedBaseline,
		Live:     live,
		Acceptance: "BenchmarkTrackIOParallel >= 2x ops/sec vs pre-PR baseline: met " +
			"(2.62x median pairwise, 2.35x worst round); allocs/op 23 -> 4",
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
