package bench

import (
	"fmt"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// buildFormatStore is buildMergeStore parameterized by store format: nFiles
// per-process sub-graphs with overlapping nodes, written through the full
// tracker pipeline so each format's canonical files land on the simulated
// PFS in its own codec.
func buildFormatStore(b *testing.B, format core.Format, nFiles, recordsPer int) *core.Store {
	b.Helper()
	view := vfs.NewStore().NewView()
	store, err := core.NewStore(core.VFSBackend{View: view}, "/prov", format)
	if err != nil {
		b.Fatal(err)
	}
	for pid := 0; pid < nFiles; pid++ {
		tr := core.NewTracker(core.DefaultConfig(), store, pid)
		user := tr.RegisterUser("shared-user")
		prog := tr.RegisterProgram("shared-program", user)
		for i := 0; i < recordsPer; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/shared/f%d", i%32), "", rdf.Term{}, prog)
			tr.TrackIO(model.Read, "read", obj, prog, 0, 0)
		}
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
	}
	return store
}

var codecBenchFormats = []struct {
	name   string
	format core.Format
}{
	{"nt", core.FormatNTriples},
	{"ttl", core.FormatTurtle},
	{"pbs", core.FormatBinary},
}

// BenchmarkMerge measures Store.Merge (sequential decode of every sub-graph
// into one graph) per codec at equal triple counts — the codec-layer
// acceptance comparison: pbs must beat nt by >= 3x.
func BenchmarkMerge(b *testing.B) {
	for _, fc := range codecBenchFormats {
		if fc.name == "ttl" {
			continue // merge acceptance compares the segment-capable codecs
		}
		b.Run(fc.name, func(b *testing.B) {
			store := buildFormatStore(b, fc.format, 64, 60)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := store.Merge()
				if err != nil {
					b.Fatal(err)
				}
				if g.Len() == 0 {
					b.Fatal("empty merge")
				}
			}
		})
	}
}

// BenchmarkStoreLoad measures decoding one large canonical sub-graph file —
// the per-file cost Merge is built from, isolated from listing and union.
func BenchmarkStoreLoad(b *testing.B) {
	for _, fc := range codecBenchFormats {
		b.Run(fc.name, func(b *testing.B) {
			store := buildFormatStore(b, fc.format, 1, 4000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := store.Merge()
				if err != nil {
					b.Fatal(err)
				}
				if g.Len() == 0 {
					b.Fatal("empty load")
				}
			}
		})
	}
}

// TestBinaryMergeMatchesText guards the benchmark's premise: each format's
// store holds the same triple multiset, so the per-codec timings compare
// equal work.
func TestBinaryMergeMatchesText(t *testing.T) {
	b := &testing.B{}
	graphs := map[string]*rdf.Graph{}
	for _, fc := range codecBenchFormats {
		store := buildFormatStore(b, fc.format, 4, 50)
		g, err := store.Merge()
		if err != nil {
			t.Fatal(err)
		}
		graphs[fc.name] = g
	}
	if graphs["pbs"].Len() != graphs["nt"].Len() || graphs["ttl"].Len() != graphs["nt"].Len() {
		t.Fatalf("per-format stores diverged: nt=%d ttl=%d pbs=%d triples",
			graphs["nt"].Len(), graphs["ttl"].Len(), graphs["pbs"].Len())
	}
}
