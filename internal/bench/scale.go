package bench

// Scale selects the experiment size. ScalePaper sweeps the paper's full
// parameter ranges (128–4096 ranks, 128–2048 files, 50–800 epochs);
// ScaleSmall shrinks every axis for unit tests and quick runs while keeping
// the same number of series so every code path is exercised.
type Scale int

// Scales.
const (
	ScaleSmall Scale = iota
	ScalePaper
)

// String names the scale.
func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "small"
}

// topRecoEpochSweep is Figure 6(a)/7(a)'s x-axis.
func (s Scale) topRecoEpochSweep() []int {
	if s == ScalePaper {
		return []int{50, 100, 200, 400, 800}
	}
	return []int{5, 10, 20}
}

// dassaFileSweep is Figure 6(b)/7(b)'s x-axis.
func (s Scale) dassaFileSweep() []int {
	if s == ScalePaper {
		return []int{128, 256, 512, 1024, 2048}
	}
	return []int{8, 16, 32}
}

// dassaRanks is the paper's 32 compute nodes.
func (s Scale) dassaRanks() int {
	if s == ScalePaper {
		return 32
	}
	return 4
}

// h5benchRankSweep is Figures 6/7 (c)(d)'s x-axis.
func (s Scale) h5benchRankSweep() []int {
	if s == ScalePaper {
		return []int{128, 256, 512, 1024, 2048, 4096}
	}
	return []int{2, 4, 8}
}

// h5benchAppendRankSweep is Figures 6/7 (e)'s reduced x-axis (appends OOM at
// high rank counts, per the paper).
func (s Scale) h5benchAppendRankSweep() []int {
	if s == ScalePaper {
		return []int{2, 4, 8, 16, 32, 64}
	}
	return []int{2, 4}
}

// fig8ConfigSweep is Figure 8's x-axis.
func (s Scale) fig8ConfigSweep() []int {
	return []int{20, 40, 80}
}

// fig8Epochs is the training length used for the ProvLake comparison.
func (s Scale) fig8Epochs() int {
	if s == ScalePaper {
		return 100
	}
	return 20
}

// topRecoEvents sizes the synthetic dataset.
func (s Scale) topRecoEvents() int {
	if s == ScalePaper {
		return 4000
	}
	return 400
}
