package bench

import (
	"fmt"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// benchPeriodicFlush measures the per-record cost of tracking with periodic
// flushing under one pipeline. With the inline-full pipeline every flush
// re-serializes the whole sub-graph, so ns/op grows with b.N (O(graph) per
// flush); the delta pipelines serialize only the records since the last
// flush, so ns/op stays flat (O(new triples) per flush).
func benchPeriodicFlush(b *testing.B, p core.Pipeline) {
	b.Helper()
	view := vfs.NewStore().NewView()
	store, err := core.NewStore(core.VFSBackend{View: view}, "/prov", core.FormatNTriples)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModePeriodic
	cfg.FlushEvery = 64
	cfg.Pipeline = p
	tr := core.NewTracker(cfg, store, 0)
	prog := tr.RegisterProgram("bench", rdf.Term{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := tr.TrackDataObject(model.Dataset, fmt.Sprintf("/f.h5/d%d", i), "", rdf.Term{}, prog)
		tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
	}
	b.StopTimer()
	if err := tr.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPeriodicFlushInlineFull(b *testing.B)  { benchPeriodicFlush(b, core.PipelineInline) }
func BenchmarkPeriodicFlushInlineDelta(b *testing.B) { benchPeriodicFlush(b, core.PipelineDelta) }
func BenchmarkPeriodicFlushAsyncDelta(b *testing.B)  { benchPeriodicFlush(b, core.PipelineAsync) }

// buildMergeStore writes nFiles per-process sub-graphs with overlapping
// nodes, the Store.Merge input shape of a many-rank run (Fig. 7 regime).
func buildMergeStore(b *testing.B, nFiles, recordsPer int) *core.Store {
	b.Helper()
	view := vfs.NewStore().NewView()
	store, err := core.NewStore(core.VFSBackend{View: view}, "/prov", core.FormatTurtle)
	if err != nil {
		b.Fatal(err)
	}
	for pid := 0; pid < nFiles; pid++ {
		tr := core.NewTracker(core.DefaultConfig(), store, pid)
		user := tr.RegisterUser("shared-user")
		prog := tr.RegisterProgram("shared-program", user)
		for i := 0; i < recordsPer; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/shared/f%d", i%32), "", rdf.Term{}, prog)
			tr.TrackIO(model.Read, "read", obj, prog, 0, 0)
		}
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
	}
	return store
}

func benchMerge(b *testing.B, workers int) {
	b.Helper()
	store := buildMergeStore(b, 64, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := store.MergeParallel(workers)
		if err != nil {
			b.Fatal(err)
		}
		if g.Len() == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkStoreMerge64Sequential(b *testing.B) { benchMerge(b, 1) }

// The parallel variant pins 8 workers (not NumCPU) so the pool path is
// exercised — and its overhead measured — even on single-CPU machines;
// real-time speedup naturally needs GOMAXPROCS > 1.
func BenchmarkStoreMerge64Parallel(b *testing.B) { benchMerge(b, 8) }

// TestMergeParallelFasterThan tests the acceptance criterion directly at
// test time (the benchmarks above report the numbers): on >= 64 sub-graph
// files the worker pool must not be slower than sequential parsing by any
// significant margin, and must produce the identical graph. Timing
// assertions are fragile in CI, so this only checks a generous bound.
func TestMergeParallelProducesSameGraphOn64Files(t *testing.T) {
	view := vfs.NewStore().NewView()
	store, err := core.NewStore(core.VFSBackend{View: view}, "/prov", core.FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 64; pid++ {
		tr := core.NewTracker(core.DefaultConfig(), store, pid)
		prog := tr.RegisterProgram("p", rdf.Term{})
		for i := 0; i < 10; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/f%d", i), "", rdf.Term{}, prog)
			tr.TrackIO(model.Read, "read", obj, prog, 0, 0)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := store.MergeParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := store.MergeParallel(8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("parallel merge %d triples != sequential %d", par.Len(), seq.Len())
	}
}
