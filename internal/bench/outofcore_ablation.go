package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
)

// requireReferenceArtifact asserts that a reference copy of the named bench
// artifact is checked in at the repository root — the recorded run later
// sessions (and the README's acceptance notes) compare against. Ablations
// whose artifacts carry acceptance gates call this first, so a clone that
// lost its reference fails loudly instead of silently benchmarking against
// nothing. Outside a source checkout (no go.mod above the working
// directory) the check is skipped: an installed binary has no repository to
// hold references.
func requireReferenceArtifact(name string) error {
	dir, err := os.Getwd()
	if err != nil {
		return nil
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("bench: reference artifact %s missing from repository root %s: %w (run the ablation and commit its artifact)", name, dir, err)
			}
			return nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil // not in a source checkout
		}
		dir = parent
	}
}

// AblationOutOfCore measures the out-of-core query path (DESIGN.md
// "Out-of-core execution"): lazy segment loading behind the byte-budgeted
// decoded-unit cache, against the eager merge it replaces. The store's total
// decoded footprint is measured first; the bounded runs then get a cache
// budget of a quarter of it, so the store is 4x the budget by construction.
//
// Phases, all on the same leveled store (packed + loose, disjoint per-process
// populations):
//
//   - eager baseline: MergePruned + query, the whole store resident.
//   - lazy cold: fresh bounded view, selective query — pages in only the
//     units the query's pruner admits.
//   - lazy warm: the same query repeated on the same view — served from the
//     cache, no decoding.
//   - lazy full sweep: a match-all query on a fresh bounded view — touches
//     every unit, forcing eviction, with peak residency still under budget.
//
// Gates enforced inline: byte parity with the eager path for the query, the
// materialized graph, and the pruned lineage reduction; peak resident bytes
// <= budget on every bounded view (counter-verified); the full sweep evicts;
// and the warm repeat is >= 2x faster than the cold run.
func AblationOutOfCore(s Scale) (*Report, error) {
	if err := requireReferenceArtifact("BENCH_outofcore.json"); err != nil {
		return nil, err
	}
	nPids, recordsPer := 12, 24
	if s == ScalePaper {
		nPids, recordsPer = 32, 96
	}

	tmp, err := os.MkdirTemp("", "provio-abloutofcore-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	spec := "dir:" + filepath.Join(tmp, "store")

	r := &Report{
		ID:      "abl-outofcore",
		Title:   "Ablation: out-of-core queries — lazy segment loading behind a bounded decoded-unit cache",
		Columns: []string{"phase", "decoded/units", "cache hit/miss", "peak/budget", "wall(ms)", "parity"},
		Notes: []string{
			fmt.Sprintf("%d periodic processes x %d records (disjoint entities per process), FlushEvery=8, last 2 canonical; PackSegments(1)", nPids, recordsPer),
			"budget = total decoded footprint / 4, so the store is 4x the cache by construction",
			"cold = OpenLazy + first selective query on a bounded view; warm = the same query repeated on that view",
			"gates enforced by this runner: byte parity with the eager path, peak resident <= budget, full sweep evicts, warm >= 2x faster than cold",
		},
		ArtifactName: "BENCH_outofcore.json",
	}

	// Workload: the leveled layout of abl-lsm — periodic trackers leave
	// sealed delta segments with disjoint entity populations, the first wave
	// is packed, the last two processes stay canonical L0.
	var probe rdf.Term
	build, err := core.OpenStore(spec, core.FormatBinary)
	if err != nil {
		return nil, err
	}
	for pid := 0; pid < nPids; pid++ {
		cfg := core.DefaultConfig()
		canonical := pid >= nPids-2
		if !canonical {
			cfg.Mode = core.ModePeriodic
			cfg.FlushEvery = 8
		}
		tr := core.NewTracker(cfg, build, pid)
		user := tr.RegisterUser(fmt.Sprintf("user-p%02d", pid))
		prog := tr.RegisterProgram(fmt.Sprintf("program-p%02d", pid), user)
		for i := 0; i < recordsPer; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/exp/p%02d/f%03d", pid, i), "", rdf.Term{}, rdf.Term{})
			if pid == 0 && i == 0 {
				probe = obj
			}
			tr.TrackIO(model.Write, "write", obj, prog, time.Duration(i)*time.Microsecond, 0)
		}
		if canonical {
			if err := tr.Close(); err != nil {
				return nil, err
			}
		} else if err := tr.Drain(); err != nil {
			return nil, err
		}
	}
	if _, err := build.PackSegments(1); err != nil {
		return nil, fmt.Errorf("bench: PackSegments: %w", err)
	}

	coldStore := func() (*core.Store, error) { return core.OpenStore(spec, core.FormatBinary) }
	const workers = 2

	// Eager baseline: the whole store merged and resident.
	st, err := coldStore()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	full, eagerScan, err := st.MergePruned(nil, workers)
	if err != nil {
		return nil, err
	}
	query := fmt.Sprintf("SELECT ?p ?o WHERE { <%s> ?p ?o }", probe.Value)
	q, err := sparql.Parse(query, nil)
	if err != nil {
		return nil, err
	}
	wantRes, err := resultBytes(full, q)
	if err != nil {
		return nil, err
	}
	eagerWall := time.Since(start)
	wantGraph, err := graphBytes(full)
	if err != nil {
		return nil, err
	}
	wantLineage, err := graphBytes(core.ReduceLineage(full, []rdf.Term{probe}, 2))
	if err != nil {
		return nil, err
	}

	// Total decoded footprint -> the bounded runs' budget.
	st, err = coldStore()
	if err != nil {
		return nil, err
	}
	vAll, err := st.OpenLazy(core.CacheConfig{})
	if err != nil {
		return nil, err
	}
	gAll, _, err := vAll.MaterializeGraph(workers)
	if err != nil {
		return nil, err
	}
	gotGraph, err := graphBytes(gAll)
	if err != nil {
		return nil, err
	}
	graphParity := bytes.Equal(wantGraph, gotGraph)
	total := vAll.Stats().ResidentBytes
	budget := total / 4
	if budget <= 0 {
		return nil, fmt.Errorf("bench: degenerate decoded footprint %d", total)
	}

	pruner := prunerFor(q)
	if pruner == nil {
		return nil, fmt.Errorf("bench: query unexpectedly refused a pruning hint")
	}

	// Lazy cold: fresh bounded view, first selective query.
	st, err = coldStore()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	view, err := st.OpenLazy(core.CacheConfig{MaxBytes: budget})
	if err != nil {
		return nil, err
	}
	src := view.Source(pruner)
	gotCold, err := lazyResultBytes(src, q, workers)
	if err != nil {
		return nil, err
	}
	coldWall := time.Since(start)
	coldScan := src.Stats()
	coldParity := bytes.Equal(wantRes, gotCold)

	// Lazy warm: the same query on the same view, decoded units resident.
	warmWall := time.Duration(1 << 62)
	warmParity := true
	for round := 0; round < 3; round++ {
		start = time.Now()
		gotWarm, err := lazyResultBytes(src, q, workers)
		if err != nil {
			return nil, err
		}
		if d := time.Since(start); d < warmWall {
			warmWall = d
		}
		warmParity = warmParity && bytes.Equal(wantRes, gotWarm)
	}
	warmScan := src.Stats()

	// Pruned lineage through the same bounded view.
	lg, _, err := view.ReduceLineagePruned([]rdf.Term{probe}, 2, workers)
	if err != nil {
		return nil, err
	}
	gotLineage, err := graphBytes(lg)
	if err != nil {
		return nil, err
	}
	lineageParity := bytes.Equal(wantLineage, gotLineage)
	viewStats := view.Stats()

	// Full sweep on a fresh bounded view: every unit decoded through a cache
	// a quarter of the store — eviction must do the bounding.
	st, err = coldStore()
	if err != nil {
		return nil, err
	}
	sweep, err := st.OpenLazy(core.CacheConfig{MaxBytes: budget})
	if err != nil {
		return nil, err
	}
	allQ, err := sparql.Parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o }", nil)
	if err != nil {
		return nil, err
	}
	wantAll, err := resultBytes(full, allQ)
	if err != nil {
		return nil, err
	}
	sweepSrc := sweep.Source(nil)
	start = time.Now()
	gotAll, err := lazyResultBytes(sweepSrc, allQ, workers)
	if err != nil {
		return nil, err
	}
	sweepWall := time.Since(start)
	sweepScan := sweepSrc.Stats()
	sweepParity := bytes.Equal(wantAll, gotAll)

	cacheCell := func(sc *core.ScanStats) string {
		return fmt.Sprintf("%d/%d", sc.CacheHits, sc.CacheMisses)
	}
	peakCell := func(sc *core.ScanStats) string {
		return fmt.Sprintf("%d/%d", sc.CachePeakBytes, sc.CacheBudgetBytes)
	}
	r.AddRow("eager merge + query", fmt.Sprintf("%d/%d", eagerScan.Decoded, eagerScan.Units),
		"-", fmt.Sprintf("%d/-", total), ms(eagerWall), "true")
	r.AddRow("lazy cold (selective)", fmt.Sprintf("%d/%d", coldScan.Decoded, coldScan.Units),
		cacheCell(coldScan), peakCell(coldScan), ms(coldWall), fmt.Sprintf("%v", coldParity))
	r.AddRow("lazy warm (repeat)", fmt.Sprintf("%d/%d", warmScan.Decoded, warmScan.Units),
		cacheCell(warmScan), peakCell(warmScan), ms(warmWall), fmt.Sprintf("%v", warmParity))
	r.AddRow("lazy full sweep", fmt.Sprintf("%d/%d", sweepScan.Decoded, sweepScan.Units),
		cacheCell(sweepScan), peakCell(sweepScan), ms(sweepWall), fmt.Sprintf("%v", sweepParity))

	speedup := float64(coldWall) / float64(warmWall)
	var gateErrs []error
	if !coldParity || !warmParity || !sweepParity {
		gateErrs = append(gateErrs, fmt.Errorf("lazy query results diverge from eager"))
	}
	if !graphParity {
		gateErrs = append(gateErrs, fmt.Errorf("lazy materialized graph diverges from eager merge"))
	}
	if !lineageParity {
		gateErrs = append(gateErrs, fmt.Errorf("lazy lineage diverges from eager"))
	}
	if viewStats.PeakBytes > budget {
		gateErrs = append(gateErrs, fmt.Errorf("bounded view peaked at %d bytes (> budget %d)", viewStats.PeakBytes, budget))
	}
	if sw := sweep.Stats(); sw.PeakBytes > budget {
		gateErrs = append(gateErrs, fmt.Errorf("sweep view peaked at %d bytes (> budget %d)", sw.PeakBytes, budget))
	} else if sw.Evictions == 0 {
		gateErrs = append(gateErrs, fmt.Errorf("full sweep over a 4x store never evicted (cache not exercised)"))
	}
	if speedup < 2 {
		gateErrs = append(gateErrs, fmt.Errorf("warm repeat only %.2fx faster than cold (gate: >= 2x)", speedup))
	}
	if len(gateErrs) > 0 {
		return nil, fmt.Errorf("bench: out-of-core gates failed: %w", errors.Join(gateErrs...))
	}

	doc := struct {
		Experiment string            `json:"experiment"`
		Workload   map[string]int    `json:"workload"`
		TotalBytes int64             `json:"total_decoded_bytes"`
		Budget     int64             `json:"cache_budget_bytes"`
		Eager      *core.ScanStats   `json:"eager_scan"`
		Cold       *core.ScanStats   `json:"lazy_cold_scan"`
		Warm       *core.ScanStats   `json:"lazy_warm_scan"`
		Sweep      *core.ScanStats   `json:"lazy_sweep_scan"`
		Walls      map[string]string `json:"wall_ms"`
		Gates      map[string]any    `json:"gates"`
	}{
		Experiment: "abl-outofcore: lazy segment loading behind a bounded decoded-unit cache",
		Workload: map[string]int{
			"processes": nPids, "records_per_process": recordsPer, "flush_every": 8,
		},
		TotalBytes: total,
		Budget:     budget,
		Eager:      eagerScan,
		Cold:       coldScan,
		Warm:       warmScan,
		Sweep:      sweepScan,
		Walls: map[string]string{
			"eager": ms(eagerWall), "lazy_cold": ms(coldWall), "lazy_warm": ms(warmWall), "lazy_sweep": ms(sweepWall),
		},
		Gates: map[string]any{
			"store_over_budget_factor": 4,
			"query_results_byte_equal": coldParity && warmParity && sweepParity,
			"graph_byte_equal":         graphParity,
			"lineage_byte_equal":       lineageParity,
			"peak_within_budget":       viewStats.PeakBytes <= budget,
			"sweep_evictions":          sweep.Stats().Evictions,
			"warm_over_cold_speedup":   fmt.Sprintf("%.2f", speedup),
			"warm_speedup_gate":        2,
			"cold_hit_ratio":           fmt.Sprintf("%.2f", coldScan.CacheHitRatio()),
			"warm_hit_ratio":           fmt.Sprintf("%.2f", warmScan.CacheHitRatio()),
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.Artifact = string(out) + "\n"
	return r, nil
}

// prunerFor derives the segment pruner a query's patterns imply, or nil.
func prunerFor(q *sparql.Query) *core.SegmentPruner {
	pats, ok := q.PrunePatterns()
	if !ok {
		return nil
	}
	pruner := &core.SegmentPruner{}
	for _, p := range pats {
		pruner.Patterns = append(pruner.Patterns, core.PrunePattern{S: p[0], P: p[1], O: p[2]})
	}
	return pruner
}

// lazyResultBytes evaluates q over a lazy source with the parallel executor
// and renders the W3C results JSON, surfacing the view's sticky error.
func lazyResultBytes(src *core.LazySource, q *sparql.Query, workers int) ([]byte, error) {
	res, _, err := sparql.EvalParallelOnInfo(src, q, workers)
	if err != nil {
		return nil, err
	}
	if serr := src.Err(); serr != nil {
		return nil, serr
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
