package bench

import (
	"fmt"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/workloads/dassa"
	"github.com/hpc-io/prov-io/internal/workloads/h5bench"
)

// Ablation experiments for the design choices DESIGN.md calls out. They are
// not paper exhibits; provio-bench exposes them under abl-* IDs.

// AblationFlush compares the two serialization modes of the provenance
// store (§4.2: "the serialization operation may be triggered either
// periodically or by the end of the workflow"): at-end keeps the critical
// path clean but risks losing provenance on a crash; periodic pays a small
// recurring cost.
func AblationFlush(s Scale) (*Report, error) {
	r := &Report{
		ID:      "abl-flush",
		Title:   "Ablation: at-end vs periodic provenance serialization",
		Columns: []string{"flush_every", "completion(s)", "overhead vs at-end"},
		Notes:   []string{"periodic mode bounds provenance loss at a small recurring serialization cost"},
	}
	run := func(mode core.Mode, every int) (*h5bench.Result, error) {
		cfg := h5bench.Config{Ranks: 8, Steps: 4, Pattern: h5bench.WriteRead, Scenario: h5bench.Scenario1}
		// Run through a tweaked scenario config.
		provCfg := h5bench.Scenario1.ProvConfig()
		provCfg.Mode = mode
		provCfg.FlushEvery = every
		res, err := h5bench.RunWithProvConfig(cfg, provCfg)
		return &res, err
	}
	atEnd, err := run(core.ModeAtEnd, 0)
	if err != nil {
		return nil, err
	}
	r.AddRow("at-end", fmtSeconds(atEnd.Completion), "0.000%")
	for _, every := range []int{256, 64, 16} {
		res, err := run(core.ModePeriodic, every)
		if err != nil {
			return nil, err
		}
		r.AddRow(itoa(every), fmtSeconds(res.Completion), fmtPercent(atEnd.Completion, res.Completion))
	}
	return r, nil
}

// AblationPipeline compares the three periodic-flush pipelines at a fixed
// flush interval: inline full re-serialization (O(graph) on the critical
// path per flush), inline delta segments (O(new triples)), and the async
// writer (only the handoff on the critical path, plus modeled backpressure
// when the bounded queue fills). This is the repository's rendering of the
// paper's §4.3 claim that overlapping periodic serialization with
// computation keeps tracking overhead negligible.
func AblationPipeline(s Scale) (*Report, error) {
	r := &Report{
		ID:      "abl-pipeline",
		Title:   "Ablation: periodic flush pipeline (inline-full vs delta vs async)",
		Columns: []string{"pipeline", "completion(s)", "overhead vs at-end"},
		Notes:   []string{"async delta flushing moves serialization off the critical path (paper §4.3)"},
	}
	run := func(mode core.Mode, pipeline core.Pipeline) (*h5bench.Result, error) {
		cfg := h5bench.Config{Ranks: 8, Steps: 8, Pattern: h5bench.WriteRead, Scenario: h5bench.Scenario1}
		provCfg := h5bench.Scenario1.ProvConfig()
		provCfg.Mode = mode
		// A tight interval keeps the pipelines apart: inline-full pays
		// O(graph) per flush and the graph keeps growing, delta pays
		// O(interval), async pays only the enqueue handoff.
		provCfg.FlushEvery = 8
		provCfg.Pipeline = pipeline
		res, err := h5bench.RunWithProvConfig(cfg, provCfg)
		return &res, err
	}
	atEnd, err := run(core.ModeAtEnd, core.PipelineAsync)
	if err != nil {
		return nil, err
	}
	r.AddRow("at-end", fmtSeconds(atEnd.Completion), "0.000%")
	for _, p := range []core.Pipeline{core.PipelineInline, core.PipelineDelta, core.PipelineAsync} {
		res, err := run(core.ModePeriodic, p)
		if err != nil {
			return nil, err
		}
		r.AddRow(p.String(), fmtSeconds(res.Completion), fmtPercent(atEnd.Completion, res.Completion))
	}
	return r, nil
}

// AblationGranularity quantifies the completeness/overhead tradeoff of the
// User Engine's class switches (§4.2): each enabled Data Object class adds
// records and bytes.
func AblationGranularity(s Scale) (*Report, error) {
	r := &Report{
		ID:      "abl-granularity",
		Title:   "Ablation: sub-class switches vs provenance volume",
		Columns: []string{"enabled classes", "records", "triples", "storage(KB)"},
		Notes:   []string{"the model's per-class switches trade completeness for overhead (paper §4.2)"},
	}
	levels := []struct {
		name    string
		classes []string
	}{
		{"I/O API only", []string{"Create", "Open", "Read", "Write", "Fsync", "Rename"}},
		{"+File", []string{"Create", "Open", "Read", "Write", "Fsync", "Rename", "File"}},
		{"+Dataset", []string{"Create", "Open", "Read", "Write", "Fsync", "Rename", "File", "Dataset"}},
		{"+Attribute", []string{"Create", "Open", "Read", "Write", "Fsync", "Rename", "File", "Dataset", "Attribute"}},
		{"+Agents", []string{"Create", "Open", "Read", "Write", "Fsync", "Rename", "File", "Dataset", "Attribute", "User", "Thread", "Program"}},
	}
	for _, lvl := range levels {
		provCfg := core.ScenarioConfig(false, lvl.classes...)
		cfg := h5bench.Config{Ranks: 4, Steps: 3, Pattern: h5bench.WriteRead}
		res, err := h5bench.RunWithProvConfig(cfg, provCfg)
		if err != nil {
			return nil, err
		}
		r.AddRow(lvl.name, fmt.Sprintf("%d", res.Records), fmt.Sprintf("%d", res.Triples), fmtKB(res.ProvBytes))
	}
	return r, nil
}

// AblationFormat compares the two store serializations: Turtle's
// subject-grouping amortizes long IRIs, N-Triples repeats them per triple.
func AblationFormat(s Scale) (*Report, error) {
	r := &Report{
		ID:      "abl-format",
		Title:   "Ablation: Turtle vs N-Triples store size",
		Columns: []string{"format", "bytes", "ratio"},
		Notes:   []string{"Turtle's predicate lists amortize subject IRIs (paper stores Turtle 'for simplicity')"},
	}
	build := func(format core.Format) (int64, error) {
		view := vfs.NewStore().NewView()
		store, err := core.NewStore(core.VFSBackend{View: view}, "/prov", format)
		if err != nil {
			return 0, err
		}
		tr := core.NewTracker(core.DefaultConfig(), store, 0)
		prog := tr.RegisterProgram("p", rdf.Term{})
		for i := 0; i < 500; i++ {
			obj := tr.TrackDataObject(model.Dataset, fmt.Sprintf("/f.h5/d%d", i), "", rdf.Term{}, prog)
			tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
		}
		if err := tr.Close(); err != nil {
			return 0, err
		}
		return store.TotalBytes()
	}
	turtle, err := build(core.FormatTurtle)
	if err != nil {
		return nil, err
	}
	nt, err := build(core.FormatNTriples)
	if err != nil {
		return nil, err
	}
	r.AddRow("turtle", fmt.Sprintf("%d", turtle), "1.00")
	r.AddRow("ntriples", fmt.Sprintf("%d", nt), fmt.Sprintf("%.2f", float64(nt)/float64(turtle)))
	return r, nil
}

// AblationQuery compares the read path's two engines on the same provenance
// graph: the legacy term-space evaluator (materialized rdf.Term bindings,
// static boundness join heuristic) against the ID-space engine (fixed-width
// []rdf.ID registers, index-cardinality join ordering). Lineage reduction is
// compared the same way (ReduceLineageLegacy vs ReduceLineage).
func AblationQuery(s Scale) (*Report, error) {
	r := &Report{
		ID:      "abl-query",
		Title:   "Ablation: term-space vs ID-space query engine",
		Columns: []string{"operation", "term-space(ms)", "id-space(ms)", "speedup"},
		Notes:   []string{"ID-space execution avoids per-row term materialization; join order from index cardinalities"},
	}

	files := 16
	if s == ScalePaper {
		files = 128
	}
	dassaCfg := dassa.Config{Files: files, Ranks: 4, Lineage: dassa.AttrLineage}
	store := vfs.NewStore()
	if err := dassa.GenerateInputs(store.NewView(), dassaCfg); err != nil {
		return nil, err
	}
	dres, err := dassa.Run(store, dassaCfg)
	if err != nil {
		return nil, err
	}
	g, err := dres.Store.Merge()
	if err != nil {
		return nil, err
	}

	prog := model.NodeIRI(model.Program, "decimate-a1")
	queries := []struct {
		name  string
		query string
	}{
		{"BGP join (read set of a program)", fmt.Sprintf(
			`SELECT DISTINCT ?file WHERE {
				?file provio:wasReadBy ?api .
				?api prov:wasAssociatedWith <%s> .
			}`, prog)},
		{"star scan (typed objects + names)",
			`SELECT ?f ?n WHERE { ?f a provio:File . ?f provio:name ?n . }`},
	}
	const rounds = 20
	for _, qc := range queries {
		q, err := sparql.Parse(qc.query, model.Namespaces())
		if err != nil {
			return nil, err
		}
		legacyT, err := timeQuery(rounds, func() error {
			_, err := sparql.EvalLegacy(g, q)
			return err
		})
		if err != nil {
			return nil, err
		}
		idT, err := timeQuery(rounds, func() error {
			_, err := sparql.Eval(g, q)
			return err
		})
		if err != nil {
			return nil, err
		}
		r.AddRow(qc.name, fmtMillis(legacyT), fmtMillis(idT), fmtSpeedup(legacyT, idT))
	}

	product := rdf.IRI(model.NodeIRI(model.File, "/das/products/WestSac_0000.decimate.h5"))
	legacyT, err := timeQuery(rounds, func() error {
		core.ReduceLineageLegacy(g, []rdf.Term{product}, 0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	idT, err := timeQuery(rounds, func() error {
		// Uncached: this row compares the traversals, not the snapshot memo.
		core.ReduceLineageUncached(g, []rdf.Term{product}, 0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.AddRow("lineage reduction (full component)", fmtMillis(legacyT), fmtMillis(idT), fmtSpeedup(legacyT, idT))
	return r, nil
}

// timeQuery returns the average wall time of fn over n rounds.
func timeQuery(n int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

func fmtMillis(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

func fmtSpeedup(legacy, id time.Duration) string {
	if id <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(legacy)/float64(id))
}

// AblationGUIDMerge quantifies the GUID-based merge deduplication (§5):
// processes touching the same objects collapse into shared nodes.
func AblationGUIDMerge(s Scale) (*Report, error) {
	r := &Report{
		ID:      "abl-guid",
		Title:   "Ablation: GUID-based sub-graph merge deduplication",
		Columns: []string{"processes", "sum of sub-graph triples", "merged triples", "dedup"},
		Notes:   []string{"shared data objects and agents merge into single nodes (paper §5)"},
	}
	for _, procs := range []int{2, 8, 32} {
		view := vfs.NewStore().NewView()
		store, err := core.NewStore(core.VFSBackend{View: view}, "/prov", core.FormatTurtle)
		if err != nil {
			return nil, err
		}
		var sum int64
		for pid := 0; pid < procs; pid++ {
			tr := core.NewTracker(core.DefaultConfig(), store, pid)
			user := tr.RegisterUser("shared-user")
			prog := tr.RegisterProgram("shared-program", user)
			// Every process touches the same 20 files.
			for i := 0; i < 20; i++ {
				obj := tr.TrackDataObject(model.File, fmt.Sprintf("/shared/f%d", i), "", rdf.Term{}, prog)
				tr.TrackIO(model.Read, "read", obj, prog, 0, 0)
			}
			if err := tr.Close(); err != nil {
				return nil, err
			}
			_, triples := tr.Stats()
			sum += triples
		}
		merged, err := store.Merge()
		if err != nil {
			return nil, err
		}
		r.AddRow(itoa(procs), fmt.Sprintf("%d", sum), itoa(merged.Len()),
			fmt.Sprintf("%.1f%%", 100*(1-float64(merged.Len())/float64(sum))))
	}
	return r, nil
}
