package bench

import (
	"github.com/hpc-io/prov-io/internal/workloads/topreco"
)

// Fig8 reproduces Figure 8: PROV-IO vs ProvLake on Top Reco, sweeping the
// number of tracked configuration fields (20/40/80). Panels (a)(b)(c) are
// the tracking overhead comparison; panels (d)(e)(f) are the storage
// comparison. Paper: both systems under 0.025% overhead with PROV-IO lower
// in most cases; PROV-IO always stores less, because ProvLake re-embeds the
// full workflow context in every record.
func Fig8(s Scale) (*Report, error) {
	r := &Report{
		ID:    "fig8",
		Title: "PROV-IO vs ProvLake (Top Reco)",
		Columns: []string{"configs", "baseline(s)", "prov-io", "provlake",
			"prov-io(KB)", "provlake(KB)"},
		Notes: []string{
			"paper (a-c): both <0.025% overhead, PROV-IO lower in most cases",
			"paper (d-f): PROV-IO always stores less, gap grows with configs",
		},
	}
	epochs := s.fig8Epochs()
	for _, configs := range s.fig8ConfigSweep() {
		mk := func(inst topreco.Instrument) topreco.Config {
			return topreco.Config{
				Epochs: epochs, Events: s.topRecoEvents(),
				ExtraConfigs: configs, Instrument: inst, Version: 1,
			}
		}
		base, err := topreco.Run(mk(topreco.InstrumentNone))
		if err != nil {
			return nil, err
		}
		pio, err := topreco.Run(mk(topreco.InstrumentProvIO))
		if err != nil {
			return nil, err
		}
		lake, err := topreco.Run(mk(topreco.InstrumentProvLake))
		if err != nil {
			return nil, err
		}
		r.AddRow(itoa(configs), fmtSeconds(base.Completion),
			fmtPercent(base.Completion, pio.Completion),
			fmtPercent(base.Completion, lake.Completion),
			fmtKB(pio.ProvBytes), fmtKB(lake.ProvBytes))
	}
	return r, nil
}
