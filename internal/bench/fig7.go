package bench

import (
	"fmt"

	"github.com/hpc-io/prov-io/internal/workloads/dassa"
	"github.com/hpc-io/prov-io/internal/workloads/h5bench"
	"github.com/hpc-io/prov-io/internal/workloads/topreco"
)

// Fig7a reproduces Figure 7(a): Top Reco provenance size vs epochs (paper:
// negligible KBs, linear in epochs).
func Fig7a(s Scale) (*Report, error) {
	r := &Report{
		ID:      "fig7a",
		Title:   "Top Reco provenance storage",
		Columns: []string{"epochs", "provenance(KB)", "records"},
		Notes:   []string{"paper: negligible size, scales linearly with epochs"},
	}
	for _, epochs := range s.topRecoEpochSweep() {
		res, err := topreco.Run(topreco.Config{Epochs: epochs, Events: s.topRecoEvents(),
			Instrument: topreco.InstrumentProvIO, Version: 1})
		if err != nil {
			return nil, err
		}
		r.AddRow(itoa(epochs), fmtKB(res.ProvBytes), fmt.Sprintf("%d", res.Records))
	}
	return r, nil
}

// Fig7b reproduces Figure 7(b): DASSA provenance size vs input files for
// the three lineage granularities (paper: ~40 MB at 128 files to ~800 MB at
// 2048 files, linear; the three scenarios are similar because I/O API
// records dominate).
func Fig7b(s Scale) (*Report, error) {
	r := &Report{
		ID:      "fig7b",
		Title:   "DASSA provenance storage",
		Columns: []string{"files", "file(MB)", "dataset(MB)", "attribute(MB)"},
		Notes: []string{
			"paper: 40MB@128 files to ~800MB@2048, linear; scenarios similar (I/O API dominates)",
		},
	}
	for _, files := range s.dassaFileSweep() {
		cfg := dassa.Config{Files: files, Ranks: s.dassaRanks()}
		row := []string{itoa(files)}
		for _, l := range []dassa.Lineage{dassa.FileLineage, dassa.DatasetLineage, dassa.AttrLineage} {
			res, err := runDassaOnce(cfg, l)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtMB(res.ProvBytes))
		}
		r.AddRow(row...)
	}
	return r, nil
}

// fig7H5bench renders one of Figures 7(c)(d)(e).
func fig7H5bench(id string, pattern h5bench.Pattern, ranks []int, note string) (*Report, error) {
	r := &Report{
		ID:      id,
		Title:   fmt.Sprintf("H5bench %s provenance storage", pattern),
		Columns: []string{"ranks", "scenario-1(MB)", "scenario-2(MB)", "scenario-3(MB)"},
		Notes:   []string{note},
	}
	for _, n := range ranks {
		row := []string{itoa(n)}
		for _, sc := range []h5bench.Scenario{h5bench.Scenario1, h5bench.Scenario2, h5bench.Scenario3} {
			res, err := h5bench.Run(h5bench.Config{Ranks: n, Pattern: pattern, Scenario: sc})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtMB(res.ProvBytes))
		}
		r.AddRow(row...)
	}
	return r, nil
}

// Fig7c reproduces Figure 7(c): write+read storage.
func Fig7c(s Scale) (*Report, error) {
	return fig7H5bench("fig7c", h5bench.WriteRead, s.h5benchRankSweep(),
		"paper: KBs to 168MB across patterns, linear in ranks")
}

// Fig7d reproduces Figure 7(d): write+overwrite+read storage (paper:
// highest storage overall, scenario-2 highest within it).
func Fig7d(s Scale) (*Report, error) {
	return fig7H5bench("fig7d", h5bench.WriteOverwriteRead, s.h5benchRankSweep(),
		"paper: highest storage of the three patterns; scenario-2 (durations) largest")
}

// Fig7e reproduces Figure 7(e): write+append+read storage at reduced ranks.
func Fig7e(s Scale) (*Report, error) {
	return fig7H5bench("fig7e", h5bench.WriteAppendRead, s.h5benchAppendRankSweep(),
		"paper: smallest pattern (few ranks contribute)")
}
