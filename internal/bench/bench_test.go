package bench

import (
	"strconv"
	"strings"
	"testing"
)

func run(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := Run(id, ScaleSmall)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Errorf("report ID = %q, want %q", rep.ID, id)
	}
	if len(rep.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return rep
}

// parsePercent parses "1.234%" into 1.234.
func parsePercent(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v
}

func parseNum(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad number %q: %v", s, err)
	}
	return v
}

func TestRegistryCoversEveryPaperExhibit(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e",
		"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig8", "fig9"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if _, err := Run("nope", ScaleSmall); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig6aOverheadTinyAndShrinking(t *testing.T) {
	rep := run(t, "fig6a")
	var prev float64 = 1e9
	for _, row := range rep.Rows {
		ov := parsePercent(t, row[3])
		if ov <= 0 {
			t.Errorf("epochs=%s: overhead %.5f%% not positive", row[0], ov)
		}
		if ov > 0.5 {
			t.Errorf("epochs=%s: overhead %.3f%% too large for Top Reco", row[0], ov)
		}
		if ov >= prev {
			t.Errorf("overhead not decreasing with epochs: %.5f -> %.5f", prev, ov)
		}
		prev = ov
	}
}

func TestFig6bAttrLineageCostsMost(t *testing.T) {
	rep := run(t, "fig6b")
	for _, row := range rep.Rows {
		file := parsePercent(t, row[2])
		attr := parsePercent(t, row[4])
		if attr <= file {
			t.Errorf("files=%s: attribute overhead %.2f%% <= file %.2f%%", row[0], attr, file)
		}
		if attr > 30 {
			t.Errorf("files=%s: attribute overhead %.2f%% out of band", row[0], attr)
		}
		if file <= 0 {
			t.Errorf("files=%s: file overhead %.2f%% not positive", row[0], file)
		}
	}
}

func TestFig6cOverheadBand(t *testing.T) {
	rep := run(t, "fig6c")
	for _, row := range rep.Rows {
		for col := 2; col <= 4; col++ {
			ov := parsePercent(t, row[col])
			if ov <= 0 || ov > 10 {
				t.Errorf("ranks=%s col=%d: overhead %.3f%% out of band", row[0], col, ov)
			}
		}
	}
}

func TestFig6eAppendLowestOverhead(t *testing.T) {
	we, err := Run("fig6c", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := Run("fig6e", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	// Compare scenario-1 overhead at the shared rank counts (2 and 4).
	wrAt := map[string]float64{}
	for _, row := range we.Rows {
		wrAt[row[0]] = parsePercent(t, row[2])
	}
	for _, row := range ap.Rows {
		if base, ok := wrAt[row[0]]; ok {
			apOv := parsePercent(t, row[2])
			if apOv >= base {
				t.Errorf("ranks=%s: append overhead %.3f%% >= write+read %.3f%%", row[0], apOv, base)
			}
		}
	}
}

func TestFig7aLinearGrowth(t *testing.T) {
	rep := run(t, "fig7a")
	var prevKB float64
	for i, row := range rep.Rows {
		kb := parseNum(t, row[1])
		if kb <= prevKB {
			t.Errorf("row %d: storage %.1fKB did not grow", i, kb)
		}
		prevKB = kb
	}
}

func TestFig7bScenariosSimilarAndGrowing(t *testing.T) {
	rep := run(t, "fig7b")
	var prev float64
	for _, row := range rep.Rows {
		file := parseNum(t, row[1])
		attr := parseNum(t, row[3])
		if file <= prev {
			t.Errorf("files=%s: storage %.2fMB did not grow", row[0], file)
		}
		prev = file
		// Paper: scenarios are similar because I/O API dominates; attr is
		// the largest but within ~2.5x.
		if attr < file || attr > file*2.5 {
			t.Errorf("files=%s: attr storage %.2f vs file %.2f diverges", row[0], attr, file)
		}
	}
}

func TestFig7dScenario2Largest(t *testing.T) {
	rep := run(t, "fig7d")
	for _, row := range rep.Rows {
		s1 := parseNum(t, row[1])
		s2 := parseNum(t, row[2])
		if s2 <= s1 {
			t.Errorf("ranks=%s: scenario-2 %.3fMB <= scenario-1 %.3fMB", row[0], s2, s1)
		}
	}
}

func TestFig7dLargerThanFig7c(t *testing.T) {
	c, err := Run("fig7c", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run("fig7d", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Rows {
		cs := parseNum(t, c.Rows[i][2])
		ds := parseNum(t, d.Rows[i][2])
		if ds <= cs {
			t.Errorf("ranks=%s: overwrite pattern storage %.3f <= write+read %.3f", c.Rows[i][0], ds, cs)
		}
	}
}

func TestFig8ProvIOWins(t *testing.T) {
	rep := run(t, "fig8")
	for _, row := range rep.Rows {
		pio := parsePercent(t, row[2])
		lake := parsePercent(t, row[3])
		if pio <= 0 || lake <= 0 {
			t.Errorf("configs=%s: non-positive overheads %v %v", row[0], pio, lake)
		}
		if pio > 1 || lake > 1 {
			t.Errorf("configs=%s: overheads too large: %.3f%% %.3f%%", row[0], pio, lake)
		}
		if pio >= lake {
			t.Errorf("configs=%s: PROV-IO overhead %.4f%% >= ProvLake %.4f%%", row[0], pio, lake)
		}
		pkb := parseNum(t, row[4])
		lkb := parseNum(t, row[5])
		if pkb >= lkb {
			t.Errorf("configs=%s: PROV-IO storage %.1fKB >= ProvLake %.1fKB", row[0], pkb, lkb)
		}
	}
}

func TestTable5QueriesAnswerNeeds(t *testing.T) {
	rep := run(t, "table5")
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rep.Rows))
	}
	wantStatements := []string{"3", "1", "2", "3", "2"}
	for i, row := range rep.Rows {
		if row[2] != wantStatements[i] {
			t.Errorf("row %d statements = %s, want %s", i, row[2], wantStatements[i])
		}
		if n := parseNum(t, row[3]); n <= 0 {
			t.Errorf("row %d returned no results", i)
		}
	}
}

func TestTablesRender(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4"} {
		rep := run(t, id)
		out := rep.Render()
		if !strings.Contains(out, rep.Title) {
			t.Errorf("%s: render lacks title", id)
		}
	}
	t2 := run(t, "table2")
	if len(t2.Rows) != 19+6 {
		t.Errorf("table2 rows = %d, want 25 (19 classes + 6 provio relations)", len(t2.Rows))
	}
}

func TestFig9EmitsDOT(t *testing.T) {
	rep := run(t, "fig9")
	if rep.ArtifactName != "fig9.dot" {
		t.Errorf("artifact name = %q", rep.ArtifactName)
	}
	if !strings.HasPrefix(rep.Artifact, "digraph provenance {") {
		t.Error("artifact is not DOT")
	}
	if !strings.Contains(rep.Artifact, "color=blue") {
		t.Error("no lineage highlighted")
	}
	// The queried product and its producing program are present.
	if !strings.Contains(rep.Artifact, "decimate") {
		t.Error("decimate program missing from graph")
	}
}

func TestReportRenderAlignment(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Columns: []string{"a", "long-column"}}
	r.AddRow("1", "2")
	r.AddRow("333333", "4")
	out := r.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[2], "---") {
		t.Error("separator missing")
	}
	if !strings.Contains(lines[1], "a       long-column") {
		t.Errorf("header not aligned: %q", lines[1])
	}
}

func TestScaleSweeps(t *testing.T) {
	if len(ScalePaper.h5benchRankSweep()) != 6 || ScalePaper.h5benchRankSweep()[5] != 4096 {
		t.Error("paper rank sweep wrong")
	}
	if len(ScalePaper.dassaFileSweep()) != 5 || ScalePaper.dassaFileSweep()[4] != 2048 {
		t.Error("paper file sweep wrong")
	}
	if ScalePaper.String() != "paper" || ScaleSmall.String() != "small" {
		t.Error("scale names wrong")
	}
	if len(ScaleSmall.fig8ConfigSweep()) != 3 {
		t.Error("fig8 sweep must be 20/40/80")
	}
}

func TestAblationFlushModes(t *testing.T) {
	rep := run(t, "abl-flush")
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// More frequent flushing costs more.
	last := parsePercent(t, rep.Rows[3][2])
	mid := parsePercent(t, rep.Rows[1][2])
	if last < mid {
		t.Errorf("flush_every=16 overhead %.4f%% < flush_every=256 %.4f%%", last, mid)
	}
}

func TestAblationPipelineAsyncCheapest(t *testing.T) {
	rep := run(t, "abl-pipeline")
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	inline := parsePercent(t, rep.Rows[1][2])
	delta := parsePercent(t, rep.Rows[2][2])
	async := parsePercent(t, rep.Rows[3][2])
	if inline <= 0 {
		t.Fatalf("inline-full overhead %v, want > 0", inline)
	}
	// Delta flushing serializes O(new) instead of O(graph) per flush, and
	// the async writer keeps even that off the critical path. Delta and
	// async may tie at the report's display precision, but neither may
	// exceed inline-full.
	if delta >= inline {
		t.Errorf("delta overhead %.4f%% >= inline-full %.4f%%", delta, inline)
	}
	if async > delta {
		t.Errorf("async overhead %.4f%% > inline-delta %.4f%%", async, delta)
	}
}

func TestAblationGranularityMonotone(t *testing.T) {
	rep := run(t, "abl-granularity")
	var prevTriples float64
	for i, row := range rep.Rows {
		triples := parseNum(t, row[2])
		if triples < prevTriples {
			t.Errorf("row %d (%s): triples %v decreased", i, row[0], triples)
		}
		prevTriples = triples
	}
	first := parseNum(t, rep.Rows[0][3])
	lastKB := parseNum(t, rep.Rows[len(rep.Rows)-1][3])
	if lastKB <= first {
		t.Error("storage did not grow with enabled classes")
	}
}

func TestAblationFormatTurtleSmaller(t *testing.T) {
	rep := run(t, "abl-format")
	ratio := parseNum(t, rep.Rows[1][2])
	if ratio <= 1 {
		t.Errorf("N-Triples/Turtle ratio = %.2f, want > 1", ratio)
	}
}

func TestAblationGUIDDedup(t *testing.T) {
	rep := run(t, "abl-guid")
	for _, row := range rep.Rows {
		sum := parseNum(t, row[1])
		merged := parseNum(t, row[2])
		if merged >= sum {
			t.Errorf("procs=%s: merge did not deduplicate (%v >= %v)", row[0], merged, sum)
		}
	}
	// Dedup percentage grows with process count (more shared nodes).
	first := parseNum(t, strings.TrimSuffix(rep.Rows[0][3], "%"))
	last := parseNum(t, strings.TrimSuffix(rep.Rows[len(rep.Rows)-1][3], "%"))
	if last <= first {
		t.Errorf("dedup should grow with processes: %.1f%% -> %.1f%%", first, last)
	}
}

func TestChartRendersNumericSeries(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Columns: []string{"ranks", "ovh", "size(MB)"}}
	r.AddRow("128", "1.5%", "10.0")
	r.AddRow("256", "3.0%", "20.0")
	out := r.Chart()
	if out == "" {
		t.Fatal("no chart produced")
	}
	if !strings.Contains(out, "█") {
		t.Error("no bars drawn")
	}
	if !strings.Contains(out, "ovh") || !strings.Contains(out, "size(MB)") {
		t.Error("series names missing")
	}
	// The 3.0 bar must be longer than the 1.5 bar.
	lines := strings.Split(out, "\n")
	var short, long int
	for _, l := range lines {
		if strings.Contains(l, "1.5") && strings.Contains(l, "ovh") {
			short = strings.Count(l, "█")
		}
		if strings.Contains(l, " 3\n") || (strings.Contains(l, "ovh") && strings.Contains(l, " 3")) {
			long = strings.Count(l, "█")
		}
	}
	if long <= short {
		t.Errorf("bar lengths not proportional: %d vs %d", short, long)
	}
}

func TestChartEmptyForDescriptiveTables(t *testing.T) {
	rep := run(t, "table1")
	if rep.Chart() != "" {
		t.Error("descriptive table produced a chart")
	}
}
