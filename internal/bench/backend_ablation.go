package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// AblationBackend measures what the pluggable store backends (DESIGN.md
// "Store backends & mounts") cost relative to the plain directory store. The
// same workload is written through each backend kind — dir, mem, the
// single-file archive, and a hot/cold mount — and the run records ingest
// wall time, the logical store size, the physical media footprint (for the
// archive: its journal, before and after the post-compact vacuum), and the
// Merge/Verify latencies that dominate read-side tooling.
//
// The report's artifact is BENCH_backend.json. The correctness gates —
// byte-identical query results across backends, chain heads surviving
// cross-backend migration, the tamper matrix and crash sweep on every
// backend — run in internal/core tests; this runner records the live
// numbers.
func AblationBackend(s Scale) (*Report, error) {
	nFiles, recordsPer := 8, 24
	if s == ScalePaper {
		nFiles, recordsPer = 32, 96
	}

	tmp, err := os.MkdirTemp("", "provio-ablbackend-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	r := &Report{
		ID:      "abl-backend",
		Title:   "Ablation: store backends (dir vs mem vs file archive vs hot/cold mount)",
		Columns: []string{"backend", "caps", "ingest(ms)", "store bytes", "media bytes", "merge(ms)", "verify(ms)", "compact(ms)", "media after vacuum"},
		Notes: []string{
			fmt.Sprintf("%d per-process sub-graphs x %d records; canonical roots from Close plus a periodic delta run left as sealed segments", nFiles, recordsPer),
			"store bytes: logical sub-graph payload (TotalBytes); media bytes: physical container footprint (n/a for mem)",
			"the archive journal retains superseded frames until Vacuum; 'media after vacuum' is its post-compact floor",
			"correctness (cross-backend query parity, migration-preserved chain heads, per-backend tamper matrix and crash sweep) is enforced by internal/core tests; these are the live numbers",
		},
		ArtifactName: "BENCH_backend.json",
	}

	type liveRow struct {
		Backend     string `json:"backend"`
		Spec        string `json:"spec"`
		Caps        string `json:"caps"`
		IngestMs    string `json:"ingest_ms"`
		StoreBytes  int64  `json:"store_bytes"`
		MediaBytes  int64  `json:"media_bytes"`
		MergeMs     string `json:"merge_ms"`
		VerifyMs    string `json:"verify_ms"`
		CompactMs   string `json:"compact_ms"`
		MediaAfter  int64  `json:"media_bytes_after_vacuum"`
		MergedSize  int    `json:"merged_triples"`
		CleanVerify bool   `json:"verify_clean"`
	}
	var live []liveRow

	// Each case names the physical artifacts so the media footprint can be
	// measured with os.Stat after the workload lands.
	cases := []struct {
		name  string
		spec  string
		media []string // files/dirs under tmp whose sizes make up the footprint
	}{
		{"dir", "dir:" + filepath.Join(tmp, "dirstore"), []string{"dirstore"}},
		{"mem", "mem:", nil},
		{"file", "file:" + filepath.Join(tmp, "run.pvs"), []string{"run.pvs"}},
		{"mount", "mount:hot=mem:,cold=file:" + filepath.Join(tmp, "cold.pvs"), []string{"cold.pvs"}},
	}
	for _, c := range cases {
		store, err := core.OpenStore(c.spec, core.FormatBinary)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := ablationWorkload(store, nFiles, recordsPer); err != nil {
			return nil, err
		}
		ingest := time.Since(start)

		total, err := store.TotalBytes()
		if err != nil {
			return nil, err
		}
		media := mediaBytes(tmp, c.media)

		start = time.Now()
		g, err := store.Merge()
		if err != nil {
			return nil, err
		}
		merge := time.Since(start)

		start = time.Now()
		rep, err := store.Verify()
		if err != nil {
			return nil, err
		}
		verify := time.Since(start)
		if !rep.Clean() {
			return nil, fmt.Errorf("bench: freshly written %s store failed Verify: %v", c.name, rep.Defects)
		}

		start = time.Now()
		if err := store.Compact(); err != nil {
			return nil, err
		}
		if err := vacuumBackend(store.Backend()); err != nil {
			return nil, err
		}
		compact := time.Since(start)
		after := mediaBytes(tmp, c.media)

		caps := core.CapsString(store.Backend().Caps())
		mediaCell, afterCell := itoa64(media), itoa64(after)
		if c.media == nil {
			mediaCell, afterCell = "-", "-"
		}
		r.AddRow(c.name, caps, ms(ingest), fmt.Sprintf("%d", total), mediaCell,
			ms(merge), ms(verify), ms(compact), afterCell)
		live = append(live, liveRow{c.name, c.spec, caps, ms(ingest), total, media,
			ms(merge), ms(verify), ms(compact), after, g.Len(), rep.Clean()})
	}

	doc := struct {
		Experiment string            `json:"experiment"`
		Workload   map[string]int    `json:"workload"`
		Live       []liveRow         `json:"live_ablation"`
		Acceptance map[string]string `json:"acceptance"`
	}{
		Experiment: "abl-backend: pluggable store backends (dir, mem, single-file archive, hot/cold mount)",
		Workload:   map[string]int{"files": nFiles, "records_per_file": recordsPer},
		Live:       live,
		Acceptance: map[string]string{
			"query_parity": "mounted and archive stores merge to byte-identical N-Triples vs the plain store, enforced by TestMountStoreParity",
			"migration":    "Compact relocates clean files across tiers verbatim — chain heads identical before and after, enforced by TestCompactMigratesBetweenBackends",
			"integrity":    "tamper matrix and crash sweep pass on mem, file, and mount backends, enforced by TestVerifyMatrixAcrossBackends / TestCrashSweepBackends",
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.Artifact = string(out) + "\n"
	return r, nil
}

// ablationWorkload writes the shared integrity-ablation workload shape into
// store: nFiles tracked runs folded by Close, plus a periodic run on pid 0
// left as sealed delta segments.
func ablationWorkload(store *core.Store, nFiles, recordsPer int) error {
	for pid := 0; pid < nFiles; pid++ {
		tr := core.NewTracker(core.DefaultConfig(), store, pid)
		user := tr.RegisterUser("shared-user")
		prog := tr.RegisterProgram("shared-program", user)
		for i := 0; i < recordsPer; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/shared/f%d", i%16), "", rdf.Term{}, prog)
			tr.TrackIO(model.Write, "write", obj, prog, time.Duration(i)*time.Microsecond, 0)
		}
		if err := tr.Close(); err != nil {
			return err
		}
	}
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModePeriodic
	cfg.FlushEvery = 4
	tr := core.NewTracker(cfg, store, 0)
	for i := 0; i < recordsPer; i++ {
		tr.TrackIO(model.Read, fmt.Sprintf("reread_%03d", i), rdf.Term{}, rdf.Term{}, 0, 0)
	}
	return tr.Drain()
}

// mediaBytes totals the on-disk footprint of the named files or directories
// under root (0 when nothing physical backs the store).
func mediaBytes(root string, names []string) int64 {
	var total int64
	for _, name := range names {
		p := filepath.Join(root, name)
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		if !fi.IsDir() {
			total += fi.Size()
			continue
		}
		filepath.Walk(p, func(_ string, fi os.FileInfo, err error) error {
			if err == nil && !fi.IsDir() {
				total += fi.Size()
			}
			return nil
		})
	}
	return total
}

// vacuumBackend reclaims superseded archive journal frames if the store's
// backend chain contains one (mirrors provio-merge -compact).
func vacuumBackend(b core.Backend) error {
	for v := any(b); v != nil; {
		if a, ok := v.(interface{ Vacuum() error }); ok {
			return a.Vacuum()
		}
		in, ok := v.(interface{ Inner() any })
		if !ok {
			return nil
		}
		v = in.Inner()
	}
	return nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3) }

func itoa64(n int64) string { return fmt.Sprintf("%d", n) }
