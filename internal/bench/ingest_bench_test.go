package bench

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

// Benchmarks for the write (ingest) path: the per-record cost of tracking an
// I/O API invocation into the in-memory sub-graph, with no store flushing on
// the critical path (ModeAtEnd, nil store). BenchmarkTrackIOParallel is the
// 4096-rank regime in miniature: many threads of one process hammering the
// same tracker, so it measures lock contention on the graph's write path as
// much as raw insert cost. Run with -benchmem — the ingest optimizations'
// headline win is allocs/op (no fmt.Sprintf term building, pooled record
// slices, one lock acquisition per record instead of per triple).

func ingestTracker() (*core.Tracker, rdf.Term, rdf.Term) {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeAtEnd
	tr := core.NewTracker(cfg, nil, 0)
	prog := tr.RegisterProgram("bench", rdf.Term{})
	obj := tr.TrackDataObject(model.Dataset, "/f.h5/d0", "", rdf.Term{}, prog)
	return tr, prog, obj
}

func BenchmarkTrackIO(b *testing.B) {
	tr, prog, obj := ingestTracker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
	}
}

func BenchmarkTrackIOParallel(b *testing.B) {
	tr, prog, _ := ingestTracker()
	// Each goroutine works on its own data object so the benchmark inserts
	// fresh triples (duplicate inserts would measure the dedup probe, not
	// the insert path), mixing object creation and I/O records like a rank
	// thread does.
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		obj := tr.TrackDataObject(model.Dataset, fmt.Sprintf("/f.h5/w%d", w), "", rdf.Term{}, prog)
		for pb.Next() {
			tr.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
		}
	})
}

// BenchmarkRecordTriples isolates the model layer: building one I/O activity
// record's triples (IRI minting, literal formatting) without graph insertion.
func BenchmarkRecordTriples(b *testing.B) {
	obj := rdf.IRI(model.NodeIRI(model.Dataset, "/f.h5/d0"))
	agent := rdf.IRI(model.NodeIRI(model.Program, "bench"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := model.IOActivityRecord{
			Class: model.Write, API: "H5Dwrite", PID: 0, Seq: i,
			Object: obj, Agent: agent, TrackDuration: true,
		}
		if len(rec.Triples()) == 0 {
			b.Fatal("no triples")
		}
	}
}
