package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/workloads/dassa"
)

// parallelQueryWorkers is the worker ladder measured by the ablation, matching
// BenchmarkQueryBGPParallel.
var parallelQueryWorkers = []int{1, 2, 4, 8}

// pqQueryRow is one executor-variant timing for one query in the artifact.
type pqQueryRow struct {
	Query        string `json:"query"`
	Executor     string `json:"executor"`
	Millis       string `json:"ms"`
	VsLocked     string `json:"speedup_vs_locked"`
	VsSerialSnap string `json:"speedup_vs_snapshot_serial"`
}

// pqMixedRow is one query-under-ingest workload measurement in the artifact.
type pqMixedRow struct {
	Variant      string `json:"variant"`
	IngestWallMs string `json:"ingest_wall_ms"`
	VsAlone      string `json:"ingest_wall_vs_alone"`
	Queries      int64  `json:"queries_completed"`
	QueryAvgMs   string `json:"query_avg_ms,omitempty"`
}

// AblationParallelQuery measures what the snapshot-isolated, morsel-driven
// query path buys over the locked read path it replaced:
//
//  1. Query latency: the §6-style queries against the live locked graph
//     (EvalOn(*rdf.Graph): one RLock acquisition per index probe) vs the
//     pinned-snapshot serial executor vs the morsel-driven parallel executor
//     at 1/2/4/8 workers.
//  2. Query-under-ingest interference: ingest wall time alone, with a
//     concurrent locked-baseline query loop, and with a concurrent
//     snapshot-parallel query loop on the same graph.
//
// Multi-worker *speedups* need real cores; on a 1-vCPU runner the worker
// ladder measures the parallel path's overhead instead, and the artifact's
// environment section says so. The lock-elision comparison (locked vs
// snapshot) and the ingest-interference comparison are meaningful at any
// core count. The report's artifact is BENCH_parallel_query.json; a
// reference copy is checked in at the repository root.
func AblationParallelQuery(s Scale) (*Report, error) {
	files := 32
	if s == ScalePaper {
		files = 128
	}
	dassaCfg := dassa.Config{Files: files, Ranks: 4, Lineage: dassa.AttrLineage}
	store := vfs.NewStore()
	if err := dassa.GenerateInputs(store.NewView(), dassaCfg); err != nil {
		return nil, err
	}
	dres, err := dassa.Run(store, dassaCfg)
	if err != nil {
		return nil, err
	}
	g, err := dres.Store.Merge()
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "abl-parallel-query",
		Title:   "Ablation: locked vs snapshot vs morsel-parallel query execution",
		Columns: []string{"workload", "variant", "ms", "relative"},
		Notes: []string{
			"locked = EvalOn(*rdf.Graph), one RLock per index probe; snapshot = Eval (pinned immutable view, one lock acquisition per query)",
			fmt.Sprintf("parallel rows use the morsel-driven executor; GOMAXPROCS=%d here, so multi-worker rows show overhead, not speedup, below 2 cores", runtime.GOMAXPROCS(0)),
			"mixed rows run a continuous query loop against the graph while 4 goroutines AddBatch fresh records into it",
		},
		ArtifactName: "BENCH_parallel_query.json",
	}

	prog := model.NodeIRI(model.Program, "decimate-a1")
	queries := []struct {
		name string
		text string
	}{
		{"BGP join (read set of a program)", fmt.Sprintf(
			`SELECT DISTINCT ?file WHERE {
				?file provio:wasReadBy ?api .
				?api prov:wasAssociatedWith <%s> .
			}`, prog)},
		{"star scan (typed objects + names)",
			`SELECT ?f ?n WHERE { ?f a provio:File . ?f provio:name ?n . }`},
	}

	const rounds = 20
	var queryRows []pqQueryRow
	for _, qc := range queries {
		q, err := sparql.Parse(qc.text, model.Namespaces())
		if err != nil {
			return nil, err
		}
		lockedT, err := timeQuery(rounds, func() error {
			_, err := sparql.EvalOn(g, q)
			return err
		})
		if err != nil {
			return nil, err
		}
		snapT, err := timeQuery(rounds, func() error {
			_, err := sparql.Eval(g, q)
			return err
		})
		if err != nil {
			return nil, err
		}
		add := func(executor string, d time.Duration) {
			queryRows = append(queryRows, pqQueryRow{
				Query: qc.name, Executor: executor, Millis: fmtMillis(d),
				VsLocked: fmtSpeedup(lockedT, d), VsSerialSnap: fmtSpeedup(snapT, d),
			})
			r.AddRow(qc.name, executor, fmtMillis(d), fmtSpeedup(lockedT, d)+" vs locked")
		}
		add("locked live graph", lockedT)
		add("snapshot serial", snapT)
		for _, w := range parallelQueryWorkers {
			w := w
			parT, err := timeQuery(rounds, func() error {
				_, err := sparql.EvalParallel(g, q, w)
				return err
			})
			if err != nil {
				return nil, err
			}
			add(fmt.Sprintf("snapshot parallel w=%d", w), parT)
		}
	}

	// Query-under-ingest: same BGP join, continuous query loop vs 4 AddBatch
	// ingest goroutines on one shared graph.
	mixedQ, err := sparql.Parse(queries[0].text, model.Namespaces())
	if err != nil {
		return nil, err
	}
	ingestWorkers, perWorker := 4, 10000
	if s == ScalePaper {
		perWorker = 25000
	}
	type mixedBest struct {
		wall time.Duration
		n    int64
		avg  time.Duration
	}
	variants := []struct {
		mode, label string
		workers     int
	}{
		{"none", "no queries", 0},
		{"locked", "locked query loop", 0},
		{"snapshot", "snapshot query loop (serial)", 0},
		{"parallel", "snapshot query loop w=4", 4},
	}
	// Each variant starts from a fresh merge of the same store (so no variant
	// inherits a graph another one grew), and the three variants interleave
	// across rounds with best-of kept — the same drift defense ingestCompare
	// uses.
	best := map[string]mixedBest{}
	for round := 0; round < 3; round++ {
		for _, mv := range variants {
			mg, err := dres.Store.Merge()
			if err != nil {
				return nil, err
			}
			wall, nq, qAvg, err := parallelMixedRun(mg, mixedQ, mv.mode, ingestWorkers, perWorker, mv.workers)
			if err != nil {
				return nil, err
			}
			if b, ok := best[mv.mode]; !ok || wall < b.wall {
				best[mv.mode] = mixedBest{wall, nq, qAvg}
			}
		}
	}
	aloneWall := best["none"].wall
	var mixedRows []pqMixedRow
	mixedRows = append(mixedRows, pqMixedRow{
		Variant: "ingest alone", IngestWallMs: fmtMillis(aloneWall), VsAlone: "1.00x",
	})
	r.AddRow("mixed ingest", "no queries", fmtMillis(aloneWall), "1.00x")
	for _, mv := range variants[1:] {
		b := best[mv.mode]
		slow := fmt.Sprintf("%.2fx", float64(b.wall)/float64(aloneWall))
		mixedRows = append(mixedRows, pqMixedRow{
			Variant: mv.label, IngestWallMs: fmtMillis(b.wall), VsAlone: slow,
			Queries: b.n, QueryAvgMs: fmtMillis(b.avg),
		})
		r.AddRow("mixed ingest", mv.label, fmtMillis(b.wall),
			fmt.Sprintf("%s slower, %d queries (%s ms avg)", slow, b.n, fmtMillis(b.avg)))
	}

	artifact, err := parallelQueryArtifactJSON(queryRows, mixedRows)
	if err != nil {
		return nil, err
	}
	r.Artifact = artifact
	return r, nil
}

// parallelMixedRun times ingesting workers disjoint record streams into graph
// g while a concurrent query loop runs in the given mode ("none", "locked",
// or "parallel" with queryWorkers morsel workers). It returns the ingest wall
// time, the number of queries completed, and the average query latency. The
// record streams use fresh pid-scoped IRIs each call so every run inserts new
// triples instead of hitting the dedup probe.
func parallelMixedRun(g *rdf.Graph, q *sparql.Query, mode string, workers, perWorker, queryWorkers int) (time.Duration, int64, time.Duration, error) {
	// pidBase shifts each invocation into a fresh IRI space; the package-level
	// counter survives across the three variants of one ablation run.
	base := int(parallelMixedPID.Add(int64(workers)))
	streams := make([][][]rdf.Triple, workers)
	for w := range streams {
		streams[w] = ingestRecordBatches(10_000+base*100+w, perWorker)
	}
	runtime.GC()

	done := make(chan struct{})
	var queries int64
	var queryTime int64 // ns
	var queryErr atomic.Value
	var qwg sync.WaitGroup
	if mode != "none" {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				start := time.Now()
				var err error
				switch mode {
				case "locked":
					_, err = sparql.EvalOn(g, q)
				case "snapshot":
					_, err = sparql.Eval(g, q)
				default:
					_, err = sparql.EvalParallel(g, q, queryWorkers)
				}
				if err != nil {
					queryErr.Store(err)
					return
				}
				atomic.AddInt64(&queryTime, int64(time.Since(start)))
				atomic.AddInt64(&queries, 1)
			}
		}()
	}

	var iwg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		iwg.Add(1)
		go func(w int) {
			defer iwg.Done()
			for _, batch := range streams[w] {
				g.AddBatch(batch)
			}
		}(w)
	}
	iwg.Wait()
	wall := time.Since(start)
	close(done)
	qwg.Wait()
	if err, ok := queryErr.Load().(error); ok && err != nil {
		return 0, 0, 0, err
	}
	n := atomic.LoadInt64(&queries)
	var avg time.Duration
	if n > 0 {
		avg = time.Duration(atomic.LoadInt64(&queryTime) / n)
	}
	return wall, n, avg, nil
}

var parallelMixedPID atomic.Int64

func parallelQueryArtifactJSON(queryRows []pqQueryRow, mixedRows []pqMixedRow) (string, error) {
	doc := struct {
		Experiment  string            `json:"experiment"`
		Environment map[string]string `json:"environment"`
		Queries     []pqQueryRow      `json:"query_latency"`
		Mixed       []pqMixedRow      `json:"query_under_ingest"`
		Acceptance  string            `json:"acceptance"`
		Notes       []string          `json:"notes"`
	}{
		Experiment: "abl-parallel-query: snapshot-isolated, morsel-driven parallel query execution",
		Environment: map[string]string{
			"goos": runtime.GOOS, "goarch": runtime.GOARCH,
			"go":         runtime.Version(),
			"num_cpu":    fmt.Sprint(runtime.NumCPU()),
			"gomaxprocs": fmt.Sprint(runtime.GOMAXPROCS(0)),
		},
		Queries: queryRows,
		Mixed:   mixedRows,
		Acceptance: "not measurable on this runner: both the >=2.5x-at-4-workers query gate and the " +
			"<=10%-ingest-degradation gate assume spare cores. With 1 vCPU the worker ladder shows the " +
			"parallel path's overhead instead of speedup, and every concurrent query loop slows ingest " +
			"by stealing the only CPU — the snapshot loops additionally pay per-query snapshot " +
			"extension (index map-header copies over the ingest delta) on that same CPU, so their " +
			"ingest slowdown is the larger one here. The lock-elision comparison (locked vs snapshot " +
			"on a quiescent graph) is the one gate-relevant number this environment can produce.",
		Notes: []string{
			"query_latency: avg of 20 rounds per variant on the quiescent merged DASSA provenance graph",
			"query_under_ingest: 4 goroutines AddBatch disjoint record streams into the live graph while one query loop runs continuously; ingest_wall_vs_alone is the ingest slowdown that loop causes; best-of-3 interleaved rounds, fresh graph per run",
			"with spare cores the comparison inverts: locked queries hold an RLock per index probe, which gates AddBatch writers, while snapshot queries touch the graph lock only to pin a view and then run on other cores",
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
