package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/workloads/dassa"
)

// sparqlRow is one measurement in the BENCH_sparql.json artifact.
type sparqlRow struct {
	Section string `json:"section"`
	Variant string `json:"variant"`
	Millis  string `json:"ms"`
	Note    string `json:"note,omitempty"`
}

// AblationSPARQL measures what this PR's unified-operator-tree engine adds
// on top of the morsel-parallel executor (abl-parallel-query):
//
//  1. Aggregation: a GROUP BY/COUNT dashboard query end-to-end in the
//     ID-space engine, serial vs parallel, against the term-space legacy
//     oracle running the same aggregation.
//  2. Result cache: the same query cold (full execution) vs repeated
//     against an unchanged graph (served from the epoch-keyed snapshot
//     memo). The cache gate — a cached repeat >= 10x cheaper than cold —
//     is CPU-count independent and is asserted in the artifact.
//  3. Parallel UNION: a two-alternative UNION that previous engines ran
//     serially, at 1/2/4/8 workers. Multi-worker speedup needs real cores;
//     on a 1-vCPU runner this section reports overhead, and the artifact's
//     acceptance section says so (as in abl-parallel-query).
//
// The report's artifact is BENCH_sparql.json.
func AblationSPARQL(s Scale) (*Report, error) {
	if err := requireReferenceArtifact("BENCH_sparql.json"); err != nil {
		return nil, err
	}
	files := 32
	if s == ScalePaper {
		files = 128
	}
	dassaCfg := dassa.Config{Files: files, Ranks: 4, Lineage: dassa.AttrLineage}
	store := vfs.NewStore()
	if err := dassa.GenerateInputs(store.NewView(), dassaCfg); err != nil {
		return nil, err
	}
	dres, err := dassa.Run(store, dassaCfg)
	if err != nil {
		return nil, err
	}
	g, err := dres.Store.Merge()
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "abl-sparql",
		Title:   "Ablation: operator-tree engine — aggregates, result cache, parallel UNION",
		Columns: []string{"section", "variant", "ms", "note"},
		Notes: []string{
			"aggregate = GROUP BY/COUNT over the merged DASSA provenance graph; legacy = term-space oracle",
			"cache rows compare a cold execution against a repeat served from the epoch-keyed snapshot memo",
			fmt.Sprintf("GOMAXPROCS=%d here; multi-worker UNION rows show overhead, not speedup, below 2 cores", runtime.GOMAXPROCS(0)),
		},
		ArtifactName: "BENCH_sparql.json",
	}
	var rows []sparqlRow
	add := func(section, variant string, d time.Duration, note string) {
		rows = append(rows, sparqlRow{Section: section, Variant: variant, Millis: fmtMillis(d), Note: note})
		r.AddRow(section, variant, fmtMillis(d), note)
	}

	const rounds = 20
	ns := model.Namespaces()

	// 1. Aggregation: per-API read counts, the dashboard query from README.
	aggText := `SELECT ?api (COUNT(?file) AS ?reads) WHERE {
		?file provio:wasReadBy ?api .
	} GROUP BY ?api ORDER BY ?api`
	aggQ, err := sparql.Parse(aggText, ns)
	if err != nil {
		return nil, err
	}
	legacyT, err := timeQuery(rounds, func() error {
		_, err := sparql.EvalLegacy(g, aggQ)
		return err
	})
	if err != nil {
		return nil, err
	}
	serialT, err := timeQuery(rounds, func() error {
		_, err := sparql.Eval(g, aggQ)
		return err
	})
	if err != nil {
		return nil, err
	}
	parT, err := timeQuery(rounds, func() error {
		_, err := sparql.EvalParallel(g, aggQ, 4)
		return err
	})
	if err != nil {
		return nil, err
	}
	add("aggregate", "legacy term-space", legacyT, "")
	add("aggregate", "operator tree serial", serialT, fmtSpeedup(legacyT, serialT)+" vs legacy")
	add("aggregate", "operator tree w=4", parT, fmtSpeedup(legacyT, parT)+" vs legacy")

	// 2. Result cache: cold execution vs epoch-keyed repeat. Eval bypasses
	// the cache (it always executes); Exec serves repeats from the snapshot
	// memo after the warming run.
	coldT, err := timeQuery(rounds, func() error {
		_, err := sparql.Eval(g, aggQ)
		return err
	})
	if err != nil {
		return nil, err
	}
	if _, info, err := sparql.ExecParallelInfo(g, aggText, ns, 1); err != nil {
		return nil, err
	} else if info.CacheHit {
		return nil, fmt.Errorf("abl-sparql: warming run reported a cache hit")
	}
	var lastInfo sparql.ExecInfo
	cachedT, err := timeQuery(rounds, func() error {
		_, info, err := sparql.ExecParallelInfo(g, aggText, ns, 1)
		lastInfo = info
		return err
	})
	if err != nil {
		return nil, err
	}
	if !lastInfo.CacheHit {
		return nil, fmt.Errorf("abl-sparql: repeated query against an unchanged graph was not served from the cache")
	}
	cacheSpeedup := float64(coldT) / float64(cachedT)
	cachePass := cacheSpeedup >= 10
	if !cachePass {
		return nil, fmt.Errorf("abl-sparql: cached repeat only %.2fx cheaper than cold (%s vs %s ms), gate is >=10x",
			cacheSpeedup, fmtMillis(cachedT), fmtMillis(coldT))
	}
	add("result cache", "cold execution", coldT, "")
	add("result cache", "cached repeat", cachedT,
		fmt.Sprintf("%s vs cold (gate >=10.00x: %v)", fmtSpeedup(coldT, cachedT), cachePass))

	// 3. Parallel UNION: both alternatives are parallel-sized scans; the
	// decomposition runs them as independent task lists.
	unionText := `SELECT ?f ?api WHERE {
		{ ?f provio:wasReadBy ?api } UNION { ?f provio:wasWrittenBy ?api }
	}`
	unionQ, err := sparql.Parse(unionText, ns)
	if err != nil {
		return nil, err
	}
	var union1 time.Duration
	for _, w := range parallelQueryWorkers {
		w := w
		d, err := timeQuery(rounds, func() error {
			_, err := sparql.EvalParallel(g, unionQ, w)
			return err
		})
		if err != nil {
			return nil, err
		}
		note := ""
		if w == 1 {
			union1 = d
		} else {
			note = fmtSpeedup(union1, d) + " vs w=1"
		}
		add("parallel UNION", fmt.Sprintf("w=%d", w), d, note)
	}

	artifact, err := sparqlArtifactJSON(rows, cacheSpeedup, cachePass)
	if err != nil {
		return nil, err
	}
	r.Artifact = artifact
	return r, nil
}

func sparqlArtifactJSON(rows []sparqlRow, cacheSpeedup float64, cachePass bool) (string, error) {
	acceptance := fmt.Sprintf(
		"cache gate PASS: cached repeat %.2fx cheaper than cold execution (gate >=10x; CPU-count independent). ", cacheSpeedup)
	if !cachePass {
		acceptance = fmt.Sprintf(
			"cache gate FAIL: cached repeat only %.2fx cheaper than cold execution (gate >=10x). ", cacheSpeedup)
	}
	acceptance += "The parallel-UNION speedup gate is not measurable on a 1-vCPU runner: with no spare cores the " +
		"worker ladder measures the task-decomposition overhead instead of speedup (see abl-parallel-query); " +
		"byte-identity of the parallel UNION/path/aggregate results is asserted by the repository's parity tests, " +
		"not timed here."
	doc := struct {
		Experiment  string            `json:"experiment"`
		Environment map[string]string `json:"environment"`
		Rows        []sparqlRow       `json:"measurements"`
		Acceptance  string            `json:"acceptance"`
		Notes       []string          `json:"notes"`
	}{
		Experiment: "abl-sparql: unified operator tree — aggregate pushdown, epoch-keyed result cache, parallel UNION",
		Environment: map[string]string{
			"goos": runtime.GOOS, "goarch": runtime.GOARCH,
			"go":         runtime.Version(),
			"num_cpu":    fmt.Sprint(runtime.NumCPU()),
			"gomaxprocs": fmt.Sprint(runtime.GOMAXPROCS(0)),
		},
		Rows:       rows,
		Acceptance: acceptance,
		Notes: []string{
			"aggregate: avg of 20 rounds of the GROUP BY/COUNT dashboard query on the quiescent merged DASSA graph",
			"result cache: cold = Eval (always executes); cached = Exec repeat keyed on the snapshot (watermark, removeEpoch) pair — any Add/Remove moves the pair and invalidates",
			"parallel UNION: each alternative flattens into its own morselized scan task; no serial fallback",
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
