package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
)

// AblationLSM measures the leveled segment layer with statistics pushdown
// (DESIGN.md "Leveled segments & pushdown") against the exhaustive read path
// it replaces. A store of per-process delta segments with disjoint entity
// populations is compacted into pack levels (heads recorded BEFORE packing —
// VerifyAgainst must stay clean after, since members relocate verbatim), and
// three cold reads run on a fresh store handle each time: the exhaustive
// merge, a selective single-subject SPARQL query, and a bounded lineage
// reduction. The run enforces the acceptance gates inline: the selective
// query and the lineage reduction must decode at most 25% of the store's
// units, with results byte-identical to the exhaustive path.
func AblationLSM(s Scale) (*Report, error) {
	nPids, recordsPer := 12, 24
	if s == ScalePaper {
		nPids, recordsPer = 32, 96
	}

	tmp, err := os.MkdirTemp("", "provio-abllsm-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	spec := "dir:" + filepath.Join(tmp, "store")

	r := &Report{
		ID:      "abl-lsm",
		Title:   "Ablation: leveled segments + zone-map/Bloom pushdown (skip segments, not triples)",
		Columns: []string{"read", "decoded/units", "fraction", "packs pruned", "wall(ms)", "result parity"},
		Notes: []string{
			fmt.Sprintf("%d periodic processes x %d records (disjoint entities per process), FlushEvery=8, last 2 processes folded canonical; PackSegments(1) then PackSegments(2)", nPids, recordsPer),
			"exhaustive baseline decodes every unit; pruned reads consult per-segment stats frames and pack headers",
			"chain heads recorded before compaction; VerifyAgainst after both pack steps must exit clean (verbatim member relocation)",
			"gates enforced by this runner: selective query and lineage decode <= 25% of units, results byte-identical to exhaustive",
		},
		ArtifactName: "BENCH_lsm.json",
	}

	// Workload: periodic trackers leave sealed delta segments; every process
	// owns a disjoint entity population so segment statistics can
	// discriminate. The last two processes Close instead, leaving canonical
	// L0 files that never enter packs.
	var probe rdf.Term // a data object private to pid 0
	build, err := core.OpenStore(spec, core.FormatBinary)
	if err != nil {
		return nil, err
	}
	for pid := 0; pid < nPids; pid++ {
		cfg := core.DefaultConfig()
		canonical := pid >= nPids-2
		if !canonical {
			cfg.Mode = core.ModePeriodic
			cfg.FlushEvery = 8
		}
		tr := core.NewTracker(cfg, build, pid)
		user := tr.RegisterUser(fmt.Sprintf("user-p%02d", pid))
		prog := tr.RegisterProgram(fmt.Sprintf("program-p%02d", pid), user)
		for i := 0; i < recordsPer; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/exp/p%02d/f%03d", pid, i), "", rdf.Term{}, rdf.Term{})
			if pid == 0 && i == 0 {
				probe = obj
			}
			tr.TrackIO(model.Write, "write", obj, prog, time.Duration(i)*time.Microsecond, 0)
		}
		if canonical {
			if err := tr.Close(); err != nil {
				return nil, err
			}
		} else if err := tr.Drain(); err != nil {
			return nil, err
		}
	}

	// Heads before compaction are the anchor leveled compaction must preserve.
	preRep, err := build.Verify()
	if err != nil {
		return nil, err
	}
	if !preRep.Clean() {
		return nil, fmt.Errorf("bench: pre-pack store failed Verify: %v", preRep.Defects)
	}
	headsOK := true
	for _, level := range []int{1, 2} {
		if _, err := build.PackSegments(level); err != nil {
			return nil, fmt.Errorf("bench: PackSegments(%d): %w", level, err)
		}
		vrep, err := build.VerifyAgainst(preRep.Heads)
		if err != nil {
			return nil, err
		}
		if !vrep.Clean() {
			headsOK = false
			return nil, fmt.Errorf("bench: heads not preserved across PackSegments(%d): %v", level, vrep.Defects)
		}
	}
	levels, err := build.Levels()
	if err != nil {
		return nil, err
	}

	coldStore := func() (*core.Store, error) { return core.OpenStore(spec, core.FormatBinary) }

	// Exhaustive baseline: every unit decoded.
	st, err := coldStore()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	full, exhScan, err := st.MergePruned(nil, 1)
	if err != nil {
		return nil, err
	}
	exhWall := time.Since(start)
	query := fmt.Sprintf("SELECT ?p ?o WHERE { <%s> ?p ?o }", probe.Value)
	q, err := sparql.Parse(query, nil)
	if err != nil {
		return nil, err
	}
	wantRes, err := resultBytes(full, q)
	if err != nil {
		return nil, err
	}
	wantLineage, err := graphBytes(core.ReduceLineage(full, []rdf.Term{probe}, 2))
	if err != nil {
		return nil, err
	}

	// Selective query, pruner derived from the query itself.
	pats, ok := q.PrunePatterns()
	if !ok {
		return nil, fmt.Errorf("bench: query unexpectedly refused a pruning hint")
	}
	pruner := &core.SegmentPruner{}
	for _, p := range pats {
		pruner.Patterns = append(pruner.Patterns, core.PrunePattern{S: p[0], P: p[1], O: p[2]})
	}
	st, err = coldStore()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	pg, qScan, err := st.MergePruned(pruner, 1)
	if err != nil {
		return nil, err
	}
	qWall := time.Since(start)
	gotRes, err := resultBytes(pg, q)
	if err != nil {
		return nil, err
	}
	queryParity := bytes.Equal(gotRes, wantRes)

	// Pruned lineage: fixpoint over CanContainNode probes.
	st, err = coldStore()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	lg, lScan, err := st.ReduceLineagePruned([]rdf.Term{probe}, 2, 1)
	if err != nil {
		return nil, err
	}
	lWall := time.Since(start)
	gotLineage, err := graphBytes(lg)
	if err != nil {
		return nil, err
	}
	lineageParity := bytes.Equal(gotLineage, wantLineage)

	frac := func(sc *core.ScanStats) float64 {
		if sc.Units == 0 {
			return 1
		}
		return float64(sc.Decoded) / float64(sc.Units)
	}
	addRow := func(name string, sc *core.ScanStats, wall time.Duration, parity bool) {
		r.AddRow(name, fmt.Sprintf("%d/%d", sc.Decoded, sc.Units),
			fmt.Sprintf("%.2f", frac(sc)), fmt.Sprintf("%d/%d", sc.PacksSkipped, sc.Packs),
			ms(wall), fmt.Sprintf("%v", parity))
	}
	addRow("exhaustive merge", exhScan, exhWall, true)
	addRow("selective query", qScan, qWall, queryParity)
	addRow("lineage (2 hops)", lScan, lWall, lineageParity)

	// The acceptance gates, enforced here so a regression fails the run.
	const maxFraction = 0.25
	switch {
	case !queryParity:
		return nil, fmt.Errorf("bench: pruned query results diverge from exhaustive")
	case !lineageParity:
		return nil, fmt.Errorf("bench: pruned lineage diverges from exhaustive")
	case frac(qScan) > maxFraction:
		return nil, fmt.Errorf("bench: selective query decoded %d/%d units (> %.0f%%)", qScan.Decoded, qScan.Units, maxFraction*100)
	case frac(lScan) > maxFraction:
		return nil, fmt.Errorf("bench: lineage decoded %d/%d units (> %.0f%%)", lScan.Decoded, lScan.Units, maxFraction*100)
	}

	doc := struct {
		Experiment string            `json:"experiment"`
		Workload   map[string]int    `json:"workload"`
		Levels     []core.LevelInfo  `json:"levels"`
		Exhaustive *core.ScanStats   `json:"exhaustive_scan"`
		Query      *core.ScanStats   `json:"selective_query_scan"`
		Lineage    *core.ScanStats   `json:"lineage_scan"`
		Walls      map[string]string `json:"wall_ms"`
		Gates      map[string]any    `json:"gates"`
	}{
		Experiment: "abl-lsm: leveled segment tiers with zone-map/Bloom pushdown",
		Workload: map[string]int{
			"processes": nPids, "records_per_process": recordsPer, "flush_every": 8,
		},
		Levels:     levels,
		Exhaustive: exhScan,
		Query:      qScan,
		Lineage:    lScan,
		Walls: map[string]string{
			"exhaustive": ms(exhWall), "selective_query": ms(qWall), "lineage": ms(lWall),
		},
		Gates: map[string]any{
			"max_decoded_fraction":        maxFraction,
			"query_decoded_fraction":      frac(qScan),
			"lineage_decoded_fraction":    frac(lScan),
			"query_results_byte_equal":    queryParity,
			"lineage_results_byte_equal":  lineageParity,
			"heads_preserved_across_pack": headsOK,
		},
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	r.Artifact = string(out) + "\n"
	return r, nil
}

// resultBytes evaluates q over g and renders the W3C results JSON — a
// deterministic byte form for parity checks.
func resultBytes(g *rdf.Graph, q *sparql.Query) ([]byte, error) {
	res, err := sparql.Eval(g, q)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// graphBytes renders g as deterministic sorted N-Triples.
func graphBytes(g *rdf.Graph) ([]byte, error) {
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
