package bench

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/workloads/dassa"
	"github.com/hpc-io/prov-io/internal/workloads/h5bench"
	"github.com/hpc-io/prov-io/internal/workloads/topreco"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// The paper's §6 query set (Table 5) pinned as W3C SPARQL results-JSON
// golden fixtures. Deterministic GUIDs and the simulated clock make the
// workload graphs reproducible, so any drift in parser, planner, executor,
// or workload generation shows up as a fixture diff. Regenerate with
// `go test ./internal/bench -run TestGoldenSection6Queries -update`.

// section6Queries builds the Table 5 stores and returns each query with its
// graph, keyed by a stable fixture name.
func section6Queries(t *testing.T) []struct {
	name  string
	g     *rdf.Graph
	query string
} {
	t.Helper()

	// DASSA backward file lineage.
	dassaCfg := dassa.Config{Files: 4, Ranks: 2, Lineage: dassa.FileLineage}
	store := vfs.NewStore()
	if err := dassa.GenerateInputs(store.NewView(), dassaCfg); err != nil {
		t.Fatal(err)
	}
	dres, err := dassa.Run(store, dassaCfg)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := dres.Store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	product := model.NodeIRI(model.File, "/das/products/WestSac_0000.decimate.h5")
	prog := model.NodeIRI(model.Program, "decimate-a1")
	dassaQ := fmt.Sprintf(`SELECT DISTINCT ?file WHERE {
		<%s> prov:wasAttributedTo ?program .
		?file provio:wasReadBy ?api .
		?api prov:wasAssociatedWith <%s> .
	}`, product, prog)

	// H5bench scenarios (2 answers q1+q2, 3 answers q3).
	h5cfg := h5bench.Config{Ranks: 2, Steps: 2, Scenario: h5bench.Scenario2, Pattern: h5bench.WriteRead}
	h5g2, err := runH5ForTable5(h5cfg)
	if err != nil {
		t.Fatal(err)
	}
	h5cfg.Scenario = h5bench.Scenario3
	h5g3, err := runH5ForTable5(h5cfg)
	if err != nil {
		t.Fatal(err)
	}
	fileNode := model.NodeIRI(model.File, "/scratch/vpic.h5")

	// Top Reco metadata version control.
	tres, err := topreco.Run(topreco.Config{Epochs: 5, Events: ScaleSmall.topRecoEvents(),
		Instrument: topreco.InstrumentProvIO, Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tres.Store.Merge()
	if err != nil {
		t.Fatal(err)
	}

	return []struct {
		name  string
		g     *rdf.Graph
		query string
	}{
		{"dassa_lineage", dg, dassaQ},
		{"h5bench_q1_op_counts", h5g2,
			`SELECT (COUNT(?api) AS ?n) WHERE { ?api prov:wasMemberOf prov:Activity . }`},
		{"h5bench_q2_op_durations", h5g2,
			`SELECT ?api ?duration WHERE {
				?api prov:wasMemberOf prov:Activity ;
				     provio:elapsed ?duration .
			} ORDER BY ?api LIMIT 20`},
		{"h5bench_q3_who_modified", h5g3, fmt.Sprintf(
			`SELECT DISTINCT ?user WHERE {
				<%s> prov:wasAttributedTo ?program .
				?thread prov:actedOnBehalfOf ?program .
				?program prov:actedOnBehalfOf ?user .
			}`, fileNode)},
		{"topreco_version_accuracy", tg,
			`SELECT ?version ?accuracy WHERE {
				?configuration provio:Version ?version ;
				               provio:hasAccuracy ?accuracy .
			}`},
	}
}

func TestGoldenSection6Queries(t *testing.T) {
	for _, c := range section6Queries(t) {
		res, err := sparql.Exec(c.g, c.query, model.Namespaces())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s: query returned no results", c.name)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		path := filepath.Join("testdata", "query_"+c.name+".json")
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", c.name, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: results JSON drifted from golden fixture %s\ngot:\n%s\nwant:\n%s",
				c.name, path, buf.Bytes(), want)
		}
	}
}

// TestGoldenSection6QueriesParallel re-runs the §6 fixture queries through
// the morsel-driven executor at every worker count and requires the rendered
// results JSON to be byte-identical to the serial golden fixtures — the
// parallel path must be invisible in query output, row order included.
func TestGoldenSection6QueriesParallel(t *testing.T) {
	for _, c := range section6Queries(t) {
		q, err := sparql.Parse(c.query, model.Namespaces())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		path := filepath.Join("testdata", "query_"+c.name+".json")
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run TestGoldenSection6Queries with -update first)", c.name, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			res, err := sparql.EvalParallel(c.g, q, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.name, workers, err)
			}
			var buf bytes.Buffer
			if err := res.WriteJSON(&buf); err != nil {
				t.Fatalf("%s workers=%d: %v", c.name, workers, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s workers=%d: parallel results diverge from golden fixture %s\ngot:\n%s\nwant:\n%s",
					c.name, workers, path, buf.Bytes(), want)
			}
		}
	}
}
