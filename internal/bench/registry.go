package bench

import (
	"fmt"
	"sort"
)

// Runner executes one experiment at a scale.
type Runner func(Scale) (*Report, error)

// registry maps experiment IDs to runners, in paper order.
var registry = map[string]Runner{
	"table1": Table1,
	"table2": Table2,
	"table3": Table3,
	"table4": Table4,
	"table5": Table5,
	"fig6a":  Fig6a,
	"fig6b":  Fig6b,
	"fig6c":  Fig6c,
	"fig6d":  Fig6d,
	"fig6e":  Fig6e,
	"fig7a":  Fig7a,
	"fig7b":  Fig7b,
	"fig7c":  Fig7c,
	"fig7d":  Fig7d,
	"fig7e":  Fig7e,
	"fig8":   Fig8,
	"fig9":   Fig9,

	// Ablations of DESIGN.md's called-out design choices (not paper
	// exhibits; excluded from 'all').
	"abl-flush":          AblationFlush,
	"abl-pipeline":       AblationPipeline,
	"abl-granularity":    AblationGranularity,
	"abl-format":         AblationFormat,
	"abl-guid":           AblationGUIDMerge,
	"abl-query":          AblationQuery,
	"abl-ingest":         AblationIngest,
	"abl-codec":          AblationCodec,
	"abl-parallel-query": AblationParallelQuery,
	"abl-sparql":         AblationSPARQL,
	"abl-integrity":      AblationIntegrity,
	"abl-backend":        AblationBackend,
	"abl-lsm":            AblationLSM,
	"abl-outofcore":      AblationOutOfCore,
}

// order lists experiment IDs in presentation order.
var order = []string{
	"table1", "table2", "table3", "table4",
	"fig6a", "fig6b", "fig6c", "fig6d", "fig6e",
	"fig7a", "fig7b", "fig7c", "fig7d", "fig7e",
	"fig8", "table5", "fig9",
}

// IDs returns every experiment ID in presentation order.
func IDs() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Lookup returns the runner for an experiment ID.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// Run executes one experiment by ID.
func Run(id string, s Scale) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, known)
	}
	return r(s)
}

// RunAll executes every experiment in order, returning the reports.
func RunAll(s Scale) ([]*Report, error) {
	var out []*Report
	for _, id := range order {
		rep, err := Run(id, s)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
