package bench

import (
	"fmt"
	"sync"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/workloads/dassa"
)

// Benchmark pairs for the read path: each operation runs once against the
// legacy term-space engine and once against the ID-space engine, on the same
// DASSA provenance graph. Run with -benchmem — the ID engine's headline win
// is allocations (no per-row Binding maps, no term materialization until the
// Result), which compounds into time on join-heavy queries.

var (
	queryBenchOnce  sync.Once
	queryBenchGraph *rdf.Graph
	queryBenchQuery *sparql.Query
	queryBenchRoot  rdf.Term
)

func queryBenchSetup(b *testing.B) (*rdf.Graph, *sparql.Query, rdf.Term) {
	b.Helper()
	queryBenchOnce.Do(func() {
		cfg := dassa.Config{Files: 32, Ranks: 4, Lineage: dassa.AttrLineage}
		store := vfs.NewStore()
		if err := dassa.GenerateInputs(store.NewView(), cfg); err != nil {
			panic(err)
		}
		res, err := dassa.Run(store, cfg)
		if err != nil {
			panic(err)
		}
		g, err := res.Store.Merge()
		if err != nil {
			panic(err)
		}
		prog := model.NodeIRI(model.Program, "decimate-a1")
		q, err := sparql.Parse(fmt.Sprintf(
			`SELECT DISTINCT ?file WHERE {
				?file provio:wasReadBy ?api .
				?api prov:wasAssociatedWith <%s> .
			}`, prog), model.Namespaces())
		if err != nil {
			panic(err)
		}
		queryBenchGraph = g
		queryBenchQuery = q
		queryBenchRoot = rdf.IRI(model.NodeIRI(model.File, "/das/products/WestSac_0000.decimate.h5"))
	})
	return queryBenchGraph, queryBenchQuery, queryBenchRoot
}

func BenchmarkQueryBGP(b *testing.B) {
	g, q, _ := queryBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Eval(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryBGPLegacy(b *testing.B) {
	g, q, _ := queryBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.EvalLegacy(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBGPLocked runs the §6 query against the live locked graph
// (EvalOn(*rdf.Graph)): the lock-acquisition-per-probe baseline the
// snapshot path (BenchmarkQueryBGP) eliminates.
func BenchmarkQueryBGPLocked(b *testing.B) {
	g, q, _ := queryBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.EvalOn(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBGPParallel runs the §6 query through the morsel-driven
// executor at 1/2/4/8 workers. Multi-worker speedups require multiple cores
// (GOMAXPROCS); on a single-core runner the sub-benchmarks measure the
// parallel path's overhead instead.
func BenchmarkQueryBGPParallel(b *testing.B) {
	g, q, _ := queryBenchSetup(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sparql.EvalParallel(g, q, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLineageReduce(b *testing.B) {
	g, _, root := queryBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Uncached so the benchmark measures the BFS, not the snapshot memo.
		core.ReduceLineageUncached(g, []rdf.Term{root}, 0)
	}
}

func BenchmarkLineageReduceLegacy(b *testing.B) {
	g, _, root := queryBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ReduceLineageLegacy(g, []rdf.Term{root}, 0)
	}
}
