package bench

import (
	"fmt"
	"strings"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/viz"
	"github.com/hpc-io/prov-io/internal/workloads/dassa"
)

// Fig9 reproduces Figure 9: the DASSA data-lineage visualization. It runs a
// small DASSA workflow (with X-Correlation-Stacking), queries the backward
// lineage of one data product, and renders the provenance graph as Graphviz
// DOT with the queried lineage highlighted in blue.
func Fig9(s Scale) (*Report, error) {
	cfg := dassa.Config{Files: 4, Ranks: 2, XCorr: true, Lineage: dassa.FileLineage}
	store := vfs.NewStore()
	if err := dassa.GenerateInputs(store.NewView(), cfg); err != nil {
		return nil, err
	}
	res, err := dassa.Run(store, cfg)
	if err != nil {
		return nil, err
	}
	g, err := res.Store.Merge()
	if err != nil {
		return nil, err
	}

	// Backward lineage of the first decimate product, walked with the
	// 3-statements-per-step query of Table 5.
	product := rdf.IRI(model.NodeIRI(model.File, "/das/products/WestSac_0000.decimate.h5"))
	highlight := map[string]bool{product.Value: true}
	frontier := []rdf.Term{product}
	hops := 0
	for len(frontier) > 0 && hops < 4 {
		var next []rdf.Term
		for _, node := range frontier {
			q := fmt.Sprintf(`SELECT ?program WHERE { <%s> prov:wasAttributedTo ?program . }`, node.Value)
			r1, err := sparql.Exec(g, q, model.Namespaces())
			if err != nil {
				return nil, err
			}
			for _, row := range r1.Rows {
				prog := row["program"]
				highlight[prog.Value] = true
				q2 := fmt.Sprintf(`SELECT DISTINCT ?file WHERE {
					?file provio:wasReadBy ?api .
					?api prov:wasAssociatedWith <%s> .
				}`, prog.Value)
				r2, err := sparql.Exec(g, q2, model.Namespaces())
				if err != nil {
					return nil, err
				}
				for _, fr := range r2.Rows {
					f := fr["file"]
					if !highlight[f.Value] {
						highlight[f.Value] = true
						next = append(next, f)
					}
				}
			}
		}
		frontier = next
		hops++
	}

	var dot strings.Builder
	if err := viz.WriteDOT(&dot, g, viz.Options{
		Title:     "DASSA data lineage (PROV-IO)",
		Highlight: highlight,
	}); err != nil {
		return nil, err
	}

	r := &Report{
		ID:      "fig9",
		Title:   "DASSA data lineage visualization",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"paper: lineage of the queried product highlighted in blue; graph follows the PROV-IO model",
			"render with: dot -Tpdf fig9.dot -o fig9.pdf",
		},
		Artifact:     dot.String(),
		ArtifactName: "fig9.dot",
	}
	r.AddRow("graph triples", itoa(g.Len()))
	r.AddRow("highlighted lineage nodes", itoa(len(highlight)))
	r.AddRow("backward hops", itoa(hops))
	return r, nil
}
