package bench

import (
	"fmt"

	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/workloads/dassa"
	"github.com/hpc-io/prov-io/internal/workloads/h5bench"
	"github.com/hpc-io/prov-io/internal/workloads/topreco"
)

// Fig6a reproduces Figure 6(a): Top Reco tracking performance vs training
// epochs (normalized completion time; paper: max overhead 0.02%,
// decreasing as epochs grow).
func Fig6a(s Scale) (*Report, error) {
	r := &Report{
		ID:      "fig6a",
		Title:   "Top Reco provenance tracking performance",
		Columns: []string{"epochs", "baseline(s)", "prov-io(s)", "overhead"},
		Notes: []string{
			"paper: overhead negligible (max 0.02%), decreasing with epochs (Redland init amortizes)",
		},
	}
	for _, epochs := range s.topRecoEpochSweep() {
		base, err := topreco.Run(topreco.Config{Epochs: epochs, Events: s.topRecoEvents(),
			Instrument: topreco.InstrumentNone, Version: 1})
		if err != nil {
			return nil, err
		}
		pio, err := topreco.Run(topreco.Config{Epochs: epochs, Events: s.topRecoEvents(),
			Instrument: topreco.InstrumentProvIO, Version: 1})
		if err != nil {
			return nil, err
		}
		r.AddRow(itoa(epochs), fmtSeconds(base.Completion), fmtSeconds(pio.Completion),
			fmtPercent(base.Completion, pio.Completion))
	}
	return r, nil
}

// Fig6b reproduces Figure 6(b): DASSA completion time with file, dataset,
// and attribute lineage tracking (paper: 1.8%–11% overhead, max when
// tracking attribute lineage at 2048 files).
func Fig6b(s Scale) (*Report, error) {
	r := &Report{
		ID:      "fig6b",
		Title:   "DASSA provenance tracking performance",
		Columns: []string{"files", "baseline(s)", "file", "dataset", "attribute", "worst(s)"},
		Notes: []string{
			"paper: overhead 1.8%-11%; attribute lineage costs most (attrs require extra opens)",
		},
	}
	for _, files := range s.dassaFileSweep() {
		cfg := dassa.Config{Files: files, Ranks: s.dassaRanks()}
		base, err := runDassaOnce(cfg, dassa.LineageBaseline)
		if err != nil {
			return nil, err
		}
		row := []string{itoa(files), fmtSeconds(base.Completion)}
		worst := base.Completion
		for _, l := range []dassa.Lineage{dassa.FileLineage, dassa.DatasetLineage, dassa.AttrLineage} {
			res, err := runDassaOnce(cfg, l)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtPercent(base.Completion, res.Completion))
			if res.Completion > worst {
				worst = res.Completion
			}
		}
		row = append(row, fmtSeconds(worst))
		r.AddRow(row...)
	}
	return r, nil
}

func runDassaOnce(cfg dassa.Config, l dassa.Lineage) (dassa.Result, error) {
	cfg.Lineage = l
	store := vfs.NewStore()
	if err := dassa.GenerateInputs(store.NewView(), cfg); err != nil {
		return dassa.Result{}, err
	}
	return dassa.Run(store, cfg)
}

// fig6H5bench renders one of Figures 6(c)(d)(e).
func fig6H5bench(id string, pattern h5bench.Pattern, ranks []int, note string) (*Report, error) {
	r := &Report{
		ID:      id,
		Title:   fmt.Sprintf("H5bench %s tracking performance", pattern),
		Columns: []string{"ranks", "baseline(s)", "scenario-1", "scenario-2", "scenario-3", "worst(s)"},
		Notes:   []string{note},
	}
	for _, n := range ranks {
		base, err := h5bench.Run(h5bench.Config{Ranks: n, Pattern: pattern, Scenario: h5bench.ScenarioBaseline})
		if err != nil {
			return nil, err
		}
		row := []string{itoa(n), fmtSeconds(base.Completion)}
		worst := base.Completion
		for _, sc := range []h5bench.Scenario{h5bench.Scenario1, h5bench.Scenario2, h5bench.Scenario3} {
			res, err := h5bench.Run(h5bench.Config{Ranks: n, Pattern: pattern, Scenario: sc})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtPercent(base.Completion, res.Completion))
			if res.Completion > worst {
				worst = res.Completion
			}
		}
		row = append(row, fmtSeconds(worst))
		r.AddRow(row...)
	}
	return r, nil
}

// Fig6c reproduces Figure 6(c): H5bench write+read (paper: 0.5%–4%).
func Fig6c(s Scale) (*Report, error) {
	return fig6H5bench("fig6c", h5bench.WriteRead, s.h5benchRankSweep(),
		"paper: overhead 0.5%-4% under heavy I/O; scenario-2 adds little over scenario-1")
}

// Fig6d reproduces Figure 6(d): H5bench write+overwrite+read.
func Fig6d(s Scale) (*Report, error) {
	return fig6H5bench("fig6d", h5bench.WriteOverwriteRead, s.h5benchRankSweep(),
		"paper: overhead 0.5%-4%; one more I/O application than write+read")
}

// Fig6e reproduces Figure 6(e): H5bench write+append+read at reduced rank
// counts (paper: overhead minimal, ~0.5% — appends spend more compute per
// I/O).
func Fig6e(s Scale) (*Report, error) {
	return fig6H5bench("fig6e", h5bench.WriteAppendRead, s.h5benchAppendRankSweep(),
		"paper: overhead minimal (~0.5%); append offset computation dominates")
}
