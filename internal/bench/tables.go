package bench

import (
	"fmt"
	"strings"

	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/workloads/dassa"
	"github.com/hpc-io/prov-io/internal/workloads/h5bench"
	"github.com/hpc-io/prov-io/internal/workloads/topreco"
)

// Table1 reproduces Table 1: the three use cases, their characteristics,
// and provenance needs.
func Table1(Scale) (*Report, error) {
	r := &Report{
		ID:      "table1",
		Title:   "Three real use cases with different characteristics and provenance needs",
		Columns: []string{"use case", "description", "I/O interface", "provenance need"},
	}
	r.AddRow("Top Reco", "training GNN models for top quark reconstruction; multi-program, multi-file", "POSIX", "metadata version control & mapping")
	r.AddRow("DASSA", "parallel processing of acoustic sensing data; multi-program, multi-file", "HDF5 & POSIX", "backward lineage of data products")
	r.AddRow("H5bench", "simulating typical I/O patterns of HDF5 app; multi-program, single-file", "HDF5", "I/O statistics & bottleneck")
	return r, nil
}

// Table2 reproduces Table 2: the PROV-IO model description, generated from
// the live ontology in internal/model.
func Table2(Scale) (*Report, error) {
	r := &Report{
		ID:      "table2",
		Title:   "Description of PROV-IO model",
		Columns: []string{"super-class", "sub-class", "description"},
	}
	for _, c := range model.AllClasses() {
		name := c.Name
		if c.Stereotype != "" {
			name = "<<" + c.Stereotype + ">> " + name
		}
		r.AddRow(c.Super.String(), name, c.Description)
	}
	for _, rel := range model.AllRelations() {
		if rel.Prefix == "provio" {
			r.AddRow("Relation", rel.CURIE(), rel.Description)
		}
	}
	return r, nil
}

// Table3 reproduces Table 3: the provenance needs and the information
// PROV-IO tracks per workflow, generated from the live scenario configs.
func Table3(Scale) (*Report, error) {
	r := &Report{
		ID:      "table3",
		Title:   "Provenance needs and information tracked by PROV-IO",
		Columns: []string{"workflow", "provenance need", "information tracked"},
	}
	r.AddRow("Top Reco (Go)", "metadata version control & mapping", "hyperparameter, preselection, training accuracy")
	for _, l := range []dassa.Lineage{dassa.FileLineage, dassa.DatasetLineage, dassa.AttrLineage} {
		cfg := l.ProvConfig()
		r.AddRow("DASSA", l.String(), strings.Join(summarizeClasses(cfg.EnabledClasses()), ", "))
	}
	for _, sc := range []h5bench.Scenario{h5bench.Scenario1, h5bench.Scenario2, h5bench.Scenario3} {
		cfg := sc.ProvConfig()
		info := summarizeClasses(cfg.EnabledClasses())
		if cfg.Duration {
			info = append(info, "duration")
		}
		r.AddRow("H5bench", sc.String(), strings.Join(info, ", "))
	}
	return r, nil
}

// summarizeClasses compresses the six I/O API classes into "I/O API".
func summarizeClasses(classes []string) []string {
	ioAPI := map[string]bool{"Create": true, "Open": true, "Read": true,
		"Write": true, "Fsync": true, "Rename": true}
	var out []string
	sawIO := false
	for _, c := range classes {
		if ioAPI[c] {
			sawIO = true
			continue
		}
		out = append(out, strings.ToLower(c))
	}
	if sawIO {
		out = append([]string{"I/O API"}, out...)
	}
	return out
}

// Table4 reproduces Table 4: basic characteristics of Komadu, ProvLake, and
// PROV-IO.
func Table4(Scale) (*Report, error) {
	r := &Report{
		ID:      "table4",
		Title:   "Basic characteristics of three frameworks",
		Columns: []string{"", "Komadu", "ProvLake", "PROV-IO"},
	}
	r.AddRow("base model", "PROV-DM", "PROV-DM", "PROV-DM")
	r.AddRow("language", "Java", "Python", "C/C++,Python,Java (Go here)")
	r.AddRow("transparency", "No", "No", "Hybrid")
	return r, nil
}

// table5Query bundles one Table 5 row.
type table5Query struct {
	workflow string
	need     string
	query    string
	// expectStatements is the paper's statement count ("3*N" rows use 3,
	// one backward step).
	expectStatements int
}

// Table5 reproduces Table 5: the example queries answering each provenance
// need, executed against freshly generated provenance stores. It reports
// the statement count of each query (the paper's metric) and the number of
// results, demonstrating that each need is answered by a handful of
// statements.
func Table5(s Scale) (*Report, error) {
	r := &Report{
		ID:      "table5",
		Title:   "Example queries",
		Columns: []string{"workflow", "provenance need", "#statements", "#results"},
		Notes: []string{
			"paper: each need answered by 1-3 SPARQL statements (3 per backward lineage step)",
		},
	}

	// --- DASSA: backward file lineage (3 statements per step). ---
	dassaCfg := dassa.Config{Files: 4, Ranks: 2, Lineage: dassa.FileLineage}
	store := vfs.NewStore()
	if err := dassa.GenerateInputs(store.NewView(), dassaCfg); err != nil {
		return nil, err
	}
	dres, err := dassa.Run(store, dassaCfg)
	if err != nil {
		return nil, err
	}
	dg, err := dres.Store.Merge()
	if err != nil {
		return nil, err
	}
	product := model.NodeIRI(model.File, "/das/products/WestSac_0000.decimate.h5")
	prog := model.NodeIRI(model.Program, "decimate-a1")
	dassaQ := fmt.Sprintf(`SELECT DISTINCT ?file WHERE {
		<%s> prov:wasAttributedTo ?program .
		?file provio:wasReadBy ?api .
		?api prov:wasAssociatedWith <%s> .
	}`, product, prog)
	if err := runTable5Row(r, dg, "DASSA", "file/dataset/attribute lineage", dassaQ, 3); err != nil {
		return nil, err
	}

	// --- H5bench: the three I/O statistics scenarios. ---
	h5cfg := h5bench.Config{Ranks: 2, Steps: 2, Scenario: h5bench.Scenario2, Pattern: h5bench.WriteRead}
	// Scenario-2 provenance contains both counts and durations, so it can
	// answer scenario-1 and scenario-2 queries; scenario-3 needs agents.
	h5res2, err := runH5ForTable5(h5cfg)
	if err != nil {
		return nil, err
	}
	q1 := `SELECT (COUNT(?api) AS ?n) WHERE { ?api prov:wasMemberOf prov:Activity . }`
	if err := runTable5Row(r, h5res2, "H5bench", "scenario-1 (op counts)", q1, 1); err != nil {
		return nil, err
	}
	q2 := `SELECT ?api ?duration WHERE {
		?api prov:wasMemberOf prov:Activity ;
		     provio:elapsed ?duration .
	}`
	if err := runTable5Row(r, h5res2, "H5bench", "scenario-2 (op durations)", q2, 2); err != nil {
		return nil, err
	}
	h5cfg.Scenario = h5bench.Scenario3
	h5res3, err := runH5ForTable5(h5cfg)
	if err != nil {
		return nil, err
	}
	fileNode := model.NodeIRI(model.File, "/scratch/vpic.h5")
	q3 := fmt.Sprintf(`SELECT DISTINCT ?user WHERE {
		<%s> prov:wasAttributedTo ?program .
		?thread prov:actedOnBehalfOf ?program .
		?program prov:actedOnBehalfOf ?user .
	}`, fileNode)
	if err := runTable5Row(r, h5res3, "H5bench", "scenario-3 (who modified the file)", q3, 3); err != nil {
		return nil, err
	}

	// --- Top Reco: metadata version control & mapping. ---
	tres, err := topreco.Run(topreco.Config{Epochs: 5, Events: s.topRecoEvents(),
		Instrument: topreco.InstrumentProvIO, Version: 1})
	if err != nil {
		return nil, err
	}
	tg, err := tres.Store.Merge()
	if err != nil {
		return nil, err
	}
	qTop := `SELECT ?version ?accuracy WHERE {
		?configuration provio:Version ?version ;
		               provio:hasAccuracy ?accuracy .
	}`
	if err := runTable5Row(r, tg, "Top Reco", "metadata version control & mapping", qTop, 2); err != nil {
		return nil, err
	}
	return r, nil
}

func runH5ForTable5(cfg h5bench.Config) (*rdf.Graph, error) {
	res, err := h5bench.Run(cfg)
	if err != nil {
		return nil, err
	}
	return res.Store.Merge()
}

func runTable5Row(r *Report, g *rdf.Graph, workflow, need, query string, wantStatements int) error {
	q, err := sparql.Parse(query, model.Namespaces())
	if err != nil {
		return fmt.Errorf("%s query: %w", workflow, err)
	}
	if got := q.StatementCount(); got != wantStatements {
		return fmt.Errorf("%s query has %d statements, expected %d", workflow, got, wantStatements)
	}
	res, err := sparql.Eval(g, q)
	if err != nil {
		return err
	}
	r.AddRow(workflow, need, itoa(wantStatements), itoa(len(res.Rows)))
	if len(res.Rows) == 0 {
		return fmt.Errorf("%s query %q returned no results", workflow, need)
	}
	return nil
}
