// Package mpi simulates the MPI execution model the paper's workloads run
// under: a fixed set of ranks executing the same program, synchronizing at
// barriers, and reducing values across the communicator. Ranks are
// goroutines; each owns a virtual clock (see internal/simclock) and barriers
// synchronize clocks to the communicator-wide maximum, exactly how a real
// barrier makes every rank wait for the slowest one.
package mpi

import (
	"fmt"
	"sync"
	"time"

	"github.com/hpc-io/prov-io/internal/simclock"
)

// Comm is a simulated communicator.
type Comm struct {
	size   int
	clocks []*simclock.Clock

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	phase   int
	aborted bool
}

// NewComm creates a communicator with the given number of ranks.
func NewComm(size int) *Comm {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid communicator size %d", size))
	}
	c := &Comm{size: size, clocks: make([]*simclock.Clock, size)}
	for i := range c.clocks {
		c.clocks[i] = simclock.NewClock()
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Rank is the per-rank execution context handed to the rank function.
type Rank struct {
	comm *Comm
	id   int
	// Clock is this rank's virtual clock.
	Clock *simclock.Clock
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Comm returns the communicator.
func (r *Rank) Comm() *Comm { return r.comm }

// Barrier blocks until every rank has entered the barrier, then advances
// every rank's clock to the maximum across the communicator.
func (r *Rank) Barrier() {
	c := r.comm
	c.mu.Lock()
	if c.aborted {
		// A rank died; the communicator will never be complete again.
		c.mu.Unlock()
		return
	}
	phase := c.phase
	c.arrived++
	if c.arrived == c.size {
		// Last rank in: synchronize clocks and release the others.
		var maxT time.Duration
		for _, cl := range c.clocks {
			if t := cl.Now(); t > maxT {
				maxT = t
			}
		}
		for _, cl := range c.clocks {
			cl.AdvanceTo(maxT)
		}
		c.arrived = 0
		c.phase++
		c.cond.Broadcast()
	} else {
		for c.phase == phase && !c.aborted {
			c.cond.Wait()
		}
	}
	c.mu.Unlock()
}

// Run executes fn on every rank of a new communicator and returns the
// completion time: the maximum virtual clock across ranks after all rank
// functions return. A panic on any rank is re-panicked on the caller.
func Run(size int, fn func(r *Rank)) time.Duration {
	c := NewComm(size)
	var wg sync.WaitGroup
	panicCh := make(chan any, size)
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicCh <- p
					// Abort the communicator: unblock ranks stuck in
					// barriers AND ranks that have not reached one yet,
					// like a real MPI job aborting on rank failure.
					c.mu.Lock()
					c.aborted = true
					c.cond.Broadcast()
					c.mu.Unlock()
				}
			}()
			fn(&Rank{comm: c, id: id, Clock: c.clocks[id]})
		}(i)
	}
	wg.Wait()
	select {
	case p := <-panicCh:
		panic(p)
	default:
	}
	return c.MaxClock()
}

// MaxClock returns the latest virtual time across all ranks.
func (c *Comm) MaxClock() time.Duration {
	var maxT time.Duration
	for _, cl := range c.clocks {
		if t := cl.Now(); t > maxT {
			maxT = t
		}
	}
	return maxT
}

// ReduceMax performs an allreduce(max) over per-rank int64 contributions.
// It must be called by every rank with its own value; every rank receives
// the maximum. It synchronizes clocks like a barrier (allreduce implies
// synchronization).
type Reducer struct {
	comm *Comm
	mu   sync.Mutex
	vals []int64
}

// NewReducer creates a reducer bound to a communicator.
func NewReducer(c *Comm) *Reducer {
	return &Reducer{comm: c, vals: make([]int64, c.size)}
}

// AllReduceMax submits v for this rank and returns the communicator-wide
// maximum after all ranks arrive.
func (rd *Reducer) AllReduceMax(r *Rank, v int64) int64 {
	rd.mu.Lock()
	rd.vals[r.id] = v
	rd.mu.Unlock()
	r.Barrier()
	rd.mu.Lock()
	maxV := rd.vals[0]
	for _, x := range rd.vals[1:] {
		if x > maxV {
			maxV = x
		}
	}
	rd.mu.Unlock()
	// Second barrier so a rank cannot start the next reduction and
	// overwrite vals while a peer is still reading this one.
	r.Barrier()
	return maxV
}

// AllReduceSum submits v and returns the communicator-wide sum.
func (rd *Reducer) AllReduceSum(r *Rank, v int64) int64 {
	rd.mu.Lock()
	rd.vals[r.id] = v
	rd.mu.Unlock()
	r.Barrier()
	rd.mu.Lock()
	var sum int64
	for _, x := range rd.vals {
		sum += x
	}
	rd.mu.Unlock()
	r.Barrier()
	return sum
}
