package mpi

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryRank(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	Run(8, func(r *Rank) {
		mu.Lock()
		seen[r.ID()] = true
		mu.Unlock()
		if r.Comm().Size() != 8 {
			t.Errorf("Size = %d", r.Comm().Size())
		}
	})
	if len(seen) != 8 {
		t.Fatalf("ranks executed = %d, want 8", len(seen))
	}
	for i := 0; i < 8; i++ {
		if !seen[i] {
			t.Errorf("rank %d never ran", i)
		}
	}
}

func TestRunReturnsMaxClock(t *testing.T) {
	got := Run(4, func(r *Rank) {
		r.Clock.Advance(time.Duration(r.ID()+1) * time.Second)
	})
	if got != 4*time.Second {
		t.Errorf("completion = %v, want 4s (slowest rank)", got)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	Run(4, func(r *Rank) {
		r.Clock.Advance(time.Duration(r.ID()) * time.Second)
		r.Barrier()
		if now := r.Clock.Now(); now != 3*time.Second {
			t.Errorf("rank %d clock after barrier = %v, want 3s", r.ID(), now)
		}
	})
}

func TestBarrierMultiplePhases(t *testing.T) {
	var count atomic.Int64
	Run(16, func(r *Rank) {
		for i := 0; i < 10; i++ {
			count.Add(1)
			r.Barrier()
			// After each barrier every rank must have contributed.
			if v := count.Load(); v%16 != 0 {
				t.Errorf("barrier leaked: count=%d at phase %d", v, i)
			}
			r.Barrier()
		}
	})
	if count.Load() != 160 {
		t.Errorf("total = %d, want 160", count.Load())
	}
}

func TestBarrierOrderingEnforced(t *testing.T) {
	// Rank 0 sets a flag before the barrier; all ranks must observe it after.
	var flag atomic.Bool
	Run(8, func(r *Rank) {
		if r.ID() == 0 {
			flag.Store(true)
		}
		r.Barrier()
		if !flag.Load() {
			t.Errorf("rank %d passed barrier before rank 0 arrived", r.ID())
		}
	})
}

func TestAllReduceMax(t *testing.T) {
	c := NewComm(8)
	rd := NewReducer(c)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{comm: c, id: id, Clock: c.clocks[id]}
			for round := 0; round < 5; round++ {
				got := rd.AllReduceMax(r, int64(id*10+round))
				want := int64(70 + round)
				if got != want {
					t.Errorf("rank %d round %d: max = %d, want %d", id, round, got, want)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestAllReduceSum(t *testing.T) {
	c := NewComm(4)
	rd := NewReducer(c)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{comm: c, id: id, Clock: c.clocks[id]}
			if got := rd.AllReduceSum(r, int64(id)); got != 6 {
				t.Errorf("rank %d: sum = %d, want 6", id, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestNewCommPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewComm(0) did not panic")
		}
	}()
	NewComm(0)
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Error("Run did not propagate rank panic")
		}
	}()
	Run(4, func(r *Rank) {
		if r.ID() == 2 {
			panic("rank failure")
		}
		r.Barrier() // other ranks must not deadlock
	})
}

func TestManyRanks(t *testing.T) {
	const n = 1024
	got := Run(n, func(r *Rank) {
		r.Clock.Advance(time.Millisecond)
		r.Barrier()
		r.Clock.Advance(time.Millisecond)
	})
	if got != 2*time.Millisecond {
		t.Errorf("completion = %v, want 2ms", got)
	}
}

func TestMaxClock(t *testing.T) {
	c := NewComm(3)
	c.clocks[1].Advance(5 * time.Second)
	if got := c.MaxClock(); got != 5*time.Second {
		t.Errorf("MaxClock = %v", got)
	}
}
