// Package model defines the PROV-IO provenance model (paper §4.1): the five
// super-classes (Entity, Activity, Agent, Extensible Class, Relation) and all
// of their concrete sub-classes from Table 2, plus the RDF vocabulary that
// maps the model onto triples following W3C PROV-O.
package model

import (
	"strings"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// Namespace IRIs used by the PROV-IO vocabulary.
const (
	ProvNS   = "http://www.w3.org/ns/prov#"
	ProvIONS = "https://github.com/hpc-io/prov-io/ns#"
	RDFNS    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	XSDNS    = "http://www.w3.org/2001/XMLSchema#"
)

// Namespaces returns the prefix table bound to the PROV-IO vocabulary.
func Namespaces() *rdf.Namespaces {
	ns := rdf.NewNamespaces()
	ns.Bind("prov", ProvNS)
	ns.Bind("provio", ProvIONS)
	ns.Bind("rdf", RDFNS)
	ns.Bind("xsd", XSDNS)
	return ns
}

// Super identifies a PROV-IO super-class.
type Super uint8

// The five PROV-IO super-classes.
const (
	SuperEntity Super = iota + 1
	SuperActivity
	SuperAgent
	SuperExtensible
	SuperRelation
)

// String returns the super-class name as used in the paper.
func (s Super) String() string {
	switch s {
	case SuperEntity:
		return "Entity"
	case SuperActivity:
		return "Activity"
	case SuperAgent:
		return "Agent"
	case SuperExtensible:
		return "Extensible Class"
	case SuperRelation:
		return "Relation"
	default:
		return "Unknown"
	}
}

// Class is one concrete PROV-IO sub-class (a row of the paper's Table 2).
type Class struct {
	Super Super
	// Stereotype is the UML-ish stereotype the paper prints, e.g.
	// "Data Object" or "I/O API". Empty for Agent/Extensible sub-classes.
	Stereotype string
	Name       string
	// Description is the Table 2 description column.
	Description string
	iri         string
	// iriTerm and nodePrefix are precomputed at class construction so the
	// ingest hot path builds no strings for them: iriTerm is the class IRI
	// as a ready Term, nodePrefix is the minted-node IRI prefix
	// (namespace + lowercased class name + "/") NodeIRI concatenates
	// identities onto.
	iriTerm    rdf.Term
	nodePrefix string
}

// IRI returns the class IRI term.
func (c Class) IRI() rdf.Term { return c.iriTerm }

// String returns the class name.
func (c Class) String() string { return c.Name }

// IsZero reports whether c is the zero Class.
func (c Class) IsZero() bool { return c.Name == "" }

func newClass(super Super, stereotype, name, desc string) Class {
	return Class{
		Super: super, Stereotype: stereotype, Name: name, Description: desc,
		iri:        ProvIONS + name,
		iriTerm:    rdf.IRI(ProvIONS + name),
		nodePrefix: ProvIONS + strings.ToLower(name) + "/",
	}
}

func entityClass(name, desc string) Class {
	return newClass(SuperEntity, "Data Object", name, desc)
}

func activityClass(name, desc string) Class {
	return newClass(SuperActivity, "I/O API", name, desc)
}

func agentClass(name, desc string) Class {
	return newClass(SuperAgent, "", name, desc)
}

func extClass(name, desc string) Class {
	return newClass(SuperExtensible, "", name, desc)
}

// Entity sub-classes: the seven Data Object kinds.
var (
	Directory = entityClass("Directory", "POSIX file system directory.")
	File      = entityClass("File", "POSIX file system file.")
	Group     = entityClass("Group", "I/O library interior group structure (e.g., HDF5 group).")
	Dataset   = entityClass("Dataset", "I/O library interior dataset structure (e.g., HDF5 dataset).")
	Attribute = entityClass("Attribute", "POSIX Inode extended attribute and I/O library interior attribute structure (e.g., HDF5 attribute).")
	Datatype  = entityClass("Datatype", "I/O library interior datatype structure (e.g., HDF5 datatype).")
	Link      = entityClass("Link", "POSIX file system hard/soft link.")
)

// Activity sub-classes: the six I/O API kinds.
var (
	Create = activityClass("Create", "POSIX syscall \"open\" and I/O library \"Create\" APIs (e.g., H5Acreate).")
	Open   = activityClass("Open", "I/O library \"Open\" APIs (e.g., H5Aopen).")
	Read   = activityClass("Read", "POSIX syscall \"read\" (and variants) and I/O library \"Read\" APIs (e.g., H5Aread).")
	Write  = activityClass("Write", "POSIX syscall \"write\" (and variants) and I/O library \"Write\" APIs (e.g., H5Awrite).")
	Fsync  = activityClass("Fsync", "POSIX syscall \"fsync\" (and variants) and I/O library \"Flush\" APIs (e.g., H5Flush).")
	Rename = activityClass("Rename", "POSIX syscall \"rename\" (and variants) and I/O library \"Rename\" APIs.")
)

// Agent sub-classes.
var (
	User    = agentClass("User", "Workflow user.")
	Thread  = agentClass("Thread", "Individual thread.")
	Program = agentClass("Program", "Program instance.")
)

// Extensible Class sub-classes.
var (
	Type          = extClass("Type", "Type of a program/workflow (e.g., Machine Learning (Top Reco), Acoustic Sensing (DASSA), and Synthetic (H5bench workflow)).")
	Configuration = extClass("Configuration", "Workflow configurations (e.g., hyperparameter in Top Reco).")
	Metrics       = extClass("Metrics", "Evaluation metrics of the workflow. E.g., model accuracy in Top Reco.")
)

// AllClasses returns every concrete sub-class in Table 2 order.
func AllClasses() []Class {
	return []Class{
		Directory, File, Group, Dataset, Attribute, Datatype, Link,
		Create, Open, Read, Write, Fsync, Rename,
		User, Thread, Program,
		Type, Configuration, Metrics,
	}
}

// ClassByName looks up a sub-class by its name.
func ClassByName(name string) (Class, bool) {
	for _, c := range AllClasses() {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}

// Relation is one PROV-IO relation (predicate) with its Table 2 metadata.
type Relation struct {
	// Prefix is "prov" for inherited W3C relations and "provio" for the
	// new I/O relations PROV-IO introduces.
	Prefix      string
	Name        string
	Description string
	iri         string
	iriTerm     rdf.Term
}

// IRI returns the relation's predicate term (precomputed — the ingest path
// calls this per record).
func (r Relation) IRI() rdf.Term { return r.iriTerm }

// CURIE returns the compact name, e.g. "provio:wasReadBy".
func (r Relation) CURIE() string { return r.Prefix + ":" + r.Name }

func provRel(name, desc string) Relation {
	return Relation{Prefix: "prov", Name: name, Description: desc, iri: ProvNS + name, iriTerm: rdf.IRI(ProvNS + name)}
}

func provioRel(name, desc string) Relation {
	return Relation{Prefix: "provio", Name: name, Description: desc, iri: ProvIONS + name, iriTerm: rdf.IRI(ProvIONS + name)}
}

// Relations inherited from W3C PROV.
var (
	WasDerivedFrom  = provRel("wasDerivedFrom", "The relation between two Entities (derivation).")
	WasAttributedTo = provRel("wasAttributedTo", "The relation between an Entity and an Agent.")
	AssociatedWith  = provRel("wasAssociatedWith", "The relation between an Activity and an Agent.")
	ActedOnBehalfOf = provRel("actedOnBehalfOf", "The relation between two Agents (delegation).")
	WasMemberOf     = provRel("wasMemberOf", "Membership of a sub-class instance in its super-class.")
	Used            = provRel("used", "The relation between an Activity and the Entity it consumed.")
)

// New relations introduced by PROV-IO between I/O API and Data Object
// sub-classes (Table 2).
var (
	WasCreatedBy  = provioRel("wasCreatedBy", "The relation between a <<I/O API>> Create and a <<Data Object>>.")
	WasOpenedBy   = provioRel("wasOpenedBy", "The relation between a <<I/O API>> Open and a <<Data Object>>.")
	WasReadBy     = provioRel("wasReadBy", "The relation between a <<I/O API>> Read and a <<Data Object>>.")
	WasWrittenBy  = provioRel("wasWrittenBy", "The relation between a <<I/O API>> Write and a <<Data Object>>.")
	WasFlushedBy  = provioRel("wasFlushedBy", "The relation between a <<I/O API>> Fsync and a <<Data Object>>.")
	WasModifiedBy = provioRel("wasModifiedBy", "The relation between a <<I/O API>> Rename and a <<Data Object>>.")
)

// Property predicates used by PROV-IO records.
var (
	PropElapsed   = provioRel("elapsed", "Elapsed time of an I/O API invocation in nanoseconds.")
	PropTimestamp = provioRel("startedAt", "Simulated start time of an I/O API invocation in nanoseconds.")
	PropName      = provioRel("name", "Human-readable name of a node.")
	PropVersion   = provioRel("Version", "Version counter of a configuration record.")
	PropAccuracy  = provioRel("hasAccuracy", "Training accuracy attached to a configuration version.")
	PropValue     = provioRel("value", "Value of a configuration or metric record.")
	PropRank      = provioRel("rank", "MPI rank / thread index of a Thread agent.")
	PropType      = provioRel("hasType", "Link from a Program/workflow to its Type record.")
	PropConfig    = provioRel("hasConfiguration", "Link from a workflow to a Configuration record.")
	PropMetric    = provioRel("hasMetrics", "Link from a workflow to a Metrics record.")
)

// AllRelations returns the relation rows of Table 2 (the six new I/O
// relations) plus the inherited W3C relations.
func AllRelations() []Relation {
	return []Relation{
		WasDerivedFrom, WasAttributedTo, AssociatedWith, ActedOnBehalfOf, WasMemberOf, Used,
		WasCreatedBy, WasOpenedBy, WasReadBy, WasWrittenBy, WasFlushedBy, WasModifiedBy,
	}
}

// IORelationFor maps an I/O API sub-class to the provio relation that links
// a Data Object to it, per Table 2.
func IORelationFor(api Class) (Relation, bool) {
	switch api.Name {
	case Create.Name:
		return WasCreatedBy, true
	case Open.Name:
		return WasOpenedBy, true
	case Read.Name:
		return WasReadBy, true
	case Write.Name:
		return WasWrittenBy, true
	case Fsync.Name:
		return WasFlushedBy, true
	case Rename.Name:
		return WasModifiedBy, true
	}
	return Relation{}, false
}

// Hot constant terms of the record builders, constructed once at package
// initialization so the ingest path never rebuilds them.
var (
	rdfTypeTerm         = rdf.IRI(rdf.RDFType)
	superEntityTerm     = rdf.IRI(ProvNS + "Entity")
	superActivityTerm   = rdf.IRI(ProvNS + "Activity")
	superAgentTerm      = rdf.IRI(ProvNS + "Agent")
	superExtensibleTerm = rdf.IRI(ProvIONS + "ExtensibleClass")
)

// SuperIRI returns the W3C PROV super-class IRI for a sub-class, used for
// prov:wasMemberOf membership triples.
func SuperIRI(s Super) rdf.Term {
	switch s {
	case SuperEntity:
		return superEntityTerm
	case SuperActivity:
		return superActivityTerm
	case SuperAgent:
		return superAgentTerm
	default:
		return superExtensibleTerm
	}
}
