package model

import (
	"time"

	"github.com/hpc-io/prov-io/internal/rdf"
)

// DataObjectRecord describes one Entity node (a Data Object sub-class
// instance) plus its membership and attribution triples.
type DataObjectRecord struct {
	Class Class  // one of Directory/File/Group/Dataset/Attribute/Datatype/Link
	ID    string // identity, e.g. the path "/Timestep_0/x"
	Name  string // display name (optional; defaults to ID)
	// Container, when set, is the IRI of the enclosing object (e.g. the
	// file containing a dataset), linked with prov:wasDerivedFrom per the
	// hierarchy shown in the paper's Figure 4.
	Container string
	// AttributedTo, when set, is the IRI of the Program agent this object
	// is attributed to (prov:wasAttributedTo).
	AttributedTo string
}

// IRI returns the node IRI of the record.
func (r DataObjectRecord) IRI() rdf.Term { return rdf.IRI(NodeIRI(r.Class, r.ID)) }

// Triples renders the record as RDF.
func (r DataObjectRecord) Triples() []rdf.Triple {
	ts, _ := r.AppendTriples(nil)
	return ts
}

// AppendTriples appends the record's triples to dst — which the tracker
// recycles across records — and returns the extended slice plus the record
// node (same term IRI() mints, built once).
func (r DataObjectRecord) AppendTriples(dst []rdf.Triple) ([]rdf.Triple, rdf.Term) {
	node := r.IRI()
	name := r.Name
	if name == "" {
		name = r.ID
	}
	dst = append(dst,
		rdf.Triple{S: node, P: rdfTypeTerm, O: r.Class.IRI()},
		rdf.Triple{S: node, P: WasMemberOf.IRI(), O: superEntityTerm},
		rdf.Triple{S: node, P: PropName.IRI(), O: rdf.Literal(name)},
	)
	if r.Container != "" {
		dst = append(dst, rdf.Triple{S: node, P: WasDerivedFrom.IRI(), O: rdf.IRI(r.Container)})
	}
	if r.AttributedTo != "" {
		dst = append(dst, rdf.Triple{S: node, P: WasAttributedTo.IRI(), O: rdf.IRI(r.AttributedTo)})
	}
	return dst, node
}

// IOActivityRecord describes one I/O API invocation (an Activity node) and
// its relations to the accessed Data Object and the owning agent.
type IOActivityRecord struct {
	Class   Class  // one of Create/Open/Read/Write/Fsync/Rename
	API     string // concrete API name, e.g. "H5Dcreate2" or "write"
	PID     int    // process ID minting the invocation
	Seq     int    // per-process sequence number
	Object  rdf.Term
	Agent   rdf.Term // Program or Thread agent (prov:wasAssociatedWith)
	Elapsed time.Duration
	// Started is the (simulated) start time; zero means untracked.
	Started time.Duration
	// TrackDuration controls whether the elapsed/startedAt properties are
	// emitted (usage scenario 2 in the paper's H5bench case).
	TrackDuration bool
}

// IRI returns the invocation node IRI (e.g. ".../api/H5Dcreate2-p0-b1").
func (r IOActivityRecord) IRI() rdf.Term { return rdf.IRI(ActivityIRI(r.API, r.PID, r.Seq)) }

// Triples renders the record as RDF. The Data Object is linked to the
// activity with the class-specific provio relation (Table 2).
func (r IOActivityRecord) Triples() []rdf.Triple {
	ts, _ := r.AppendTriples(nil)
	return ts
}

// AppendTriples appends the record's triples to dst and returns the extended
// slice plus the activity node (minted once — this record is the ingest hot
// path, one per tracked API call).
func (r IOActivityRecord) AppendTriples(dst []rdf.Triple) ([]rdf.Triple, rdf.Term) {
	node := r.IRI()
	dst = append(dst,
		rdf.Triple{S: node, P: rdfTypeTerm, O: r.Class.IRI()},
		rdf.Triple{S: node, P: WasMemberOf.IRI(), O: superActivityTerm},
	)
	if !r.Object.IsZero() {
		if rel, ok := IORelationFor(r.Class); ok {
			dst = append(dst, rdf.Triple{S: r.Object, P: rel.IRI(), O: node})
		}
	}
	if !r.Agent.IsZero() {
		dst = append(dst, rdf.Triple{S: node, P: AssociatedWith.IRI(), O: r.Agent})
	}
	if r.TrackDuration {
		dst = append(dst,
			rdf.Triple{S: node, P: PropElapsed.IRI(), O: rdf.Integer(r.Elapsed.Nanoseconds())},
			rdf.Triple{S: node, P: PropTimestamp.IRI(), O: rdf.Integer(r.Started.Nanoseconds())},
		)
	}
	return dst, node
}

// AgentRecord describes a User, Thread, or Program agent.
type AgentRecord struct {
	Class Class
	ID    string
	Name  string
	// OnBehalfOf links this agent to its principal (e.g. thread → program,
	// program → user) with prov:actedOnBehalfOf.
	OnBehalfOf string
	// Rank is emitted for Thread agents (MPI rank); -1 suppresses it.
	Rank int
}

// IRI returns the agent node IRI.
func (r AgentRecord) IRI() rdf.Term { return rdf.IRI(NodeIRI(r.Class, r.ID)) }

// Triples renders the record as RDF.
func (r AgentRecord) Triples() []rdf.Triple {
	ts, _ := r.AppendTriples(nil)
	return ts
}

// AppendTriples appends the record's triples to dst and returns the extended
// slice plus the agent node (minted once).
func (r AgentRecord) AppendTriples(dst []rdf.Triple) ([]rdf.Triple, rdf.Term) {
	node := r.IRI()
	name := r.Name
	if name == "" {
		name = r.ID
	}
	dst = append(dst,
		rdf.Triple{S: node, P: rdfTypeTerm, O: r.Class.IRI()},
		rdf.Triple{S: node, P: WasMemberOf.IRI(), O: superAgentTerm},
		rdf.Triple{S: node, P: PropName.IRI(), O: rdf.Literal(name)},
	)
	if r.OnBehalfOf != "" {
		dst = append(dst, rdf.Triple{S: node, P: ActedOnBehalfOf.IRI(), O: rdf.IRI(r.OnBehalfOf)})
	}
	if r.Class.Name == Thread.Name && r.Rank >= 0 {
		dst = append(dst, rdf.Triple{S: node, P: PropRank.IRI(), O: rdf.Integer(int64(r.Rank))})
	}
	return dst, node
}

// ExtensibleRecord describes a Type, Configuration, or Metrics node — the
// user-defined provenance conveyed through the PROV-IO APIs (paper §4.1.4).
type ExtensibleRecord struct {
	Class Class // Type, Configuration, or Metrics
	// Owner is the IRI of the workflow/program node this record belongs to.
	Owner string
	Key   string
	Value rdf.Term
	// Version distinguishes repeated records of the same key across runs
	// or epochs (the Top Reco versioning need); -1 suppresses it.
	Version int
	// Accuracy attaches a training accuracy to a Configuration version;
	// NaN-free sentinel: only emitted when HasAccuracy is true.
	Accuracy    float64
	HasAccuracy bool
}

// IRI returns the record node IRI (owner-scoped so different workflows'
// records never collide). Owners minted by this vocabulary are compacted to
// their local part so record IRIs stay short in the store.
func (r ExtensibleRecord) IRI() rdf.Term {
	id := r.Key
	if r.Owner != "" {
		owner := r.Owner
		if rest, ok := cutPrefix(owner, ProvIONS); ok {
			owner = rest
		}
		id = owner + "/" + r.Key
	}
	if r.Version >= 0 {
		id += "/v" + itoa(r.Version)
	}
	return rdf.IRI(NodeIRI(r.Class, id))
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// Triples renders the record as RDF.
func (r ExtensibleRecord) Triples() []rdf.Triple {
	ts, _ := r.AppendTriples(nil)
	return ts
}

// AppendTriples appends the record's triples to dst and returns the extended
// slice plus the record node (minted once).
func (r ExtensibleRecord) AppendTriples(dst []rdf.Triple) ([]rdf.Triple, rdf.Term) {
	node := r.IRI()
	dst = append(dst,
		rdf.Triple{S: node, P: rdfTypeTerm, O: r.Class.IRI()},
		rdf.Triple{S: node, P: PropName.IRI(), O: rdf.Literal(r.Key)},
	)
	if !r.Value.IsZero() {
		dst = append(dst, rdf.Triple{S: node, P: PropValue.IRI(), O: r.Value})
	}
	if r.Version >= 0 {
		dst = append(dst, rdf.Triple{S: node, P: PropVersion.IRI(), O: rdf.Integer(int64(r.Version))})
	}
	if r.HasAccuracy {
		dst = append(dst, rdf.Triple{S: node, P: PropAccuracy.IRI(), O: rdf.Double(r.Accuracy)})
	}
	if r.Owner != "" {
		var link Relation
		switch r.Class.Name {
		case Type.Name:
			link = PropType
		case Configuration.Name:
			link = PropConfig
		default:
			link = PropMetric
		}
		dst = append(dst, rdf.Triple{S: rdf.IRI(r.Owner), P: link.IRI(), O: node})
	}
	return dst, node
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
