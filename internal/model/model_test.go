package model

import (
	"strings"
	"testing"
	"time"

	"github.com/hpc-io/prov-io/internal/rdf"
)

func TestAllClassesCoversTable2(t *testing.T) {
	cs := AllClasses()
	if len(cs) != 19 {
		t.Fatalf("AllClasses = %d entries, want 19 (7 entities + 6 activities + 3 agents + 3 extensible)", len(cs))
	}
	counts := map[Super]int{}
	for _, c := range cs {
		counts[c.Super]++
		if c.Description == "" {
			t.Errorf("class %s has no description", c.Name)
		}
		if c.IRI().Value == "" {
			t.Errorf("class %s has no IRI", c.Name)
		}
	}
	want := map[Super]int{SuperEntity: 7, SuperActivity: 6, SuperAgent: 3, SuperExtensible: 3}
	for s, n := range want {
		if counts[s] != n {
			t.Errorf("%v count = %d, want %d", s, counts[s], n)
		}
	}
}

func TestEntityStereotypes(t *testing.T) {
	for _, c := range []Class{Directory, File, Group, Dataset, Attribute, Datatype, Link} {
		if c.Stereotype != "Data Object" {
			t.Errorf("%s stereotype = %q", c.Name, c.Stereotype)
		}
	}
	for _, c := range []Class{Create, Open, Read, Write, Fsync, Rename} {
		if c.Stereotype != "I/O API" {
			t.Errorf("%s stereotype = %q", c.Name, c.Stereotype)
		}
	}
}

func TestClassByName(t *testing.T) {
	c, ok := ClassByName("Dataset")
	if !ok || c != Dataset {
		t.Errorf("ClassByName(Dataset) = %v, %v", c, ok)
	}
	if _, ok := ClassByName("Nope"); ok {
		t.Error("ClassByName accepted unknown name")
	}
	if !(Class{}).IsZero() {
		t.Error("zero Class not reported zero")
	}
}

func TestSuperString(t *testing.T) {
	cases := map[Super]string{
		SuperEntity: "Entity", SuperActivity: "Activity", SuperAgent: "Agent",
		SuperExtensible: "Extensible Class", SuperRelation: "Relation", Super(99): "Unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Super(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestIORelationForMapsAllActivities(t *testing.T) {
	want := map[string]string{
		"Create": "wasCreatedBy", "Open": "wasOpenedBy", "Read": "wasReadBy",
		"Write": "wasWrittenBy", "Fsync": "wasFlushedBy", "Rename": "wasModifiedBy",
	}
	for _, api := range []Class{Create, Open, Read, Write, Fsync, Rename} {
		rel, ok := IORelationFor(api)
		if !ok {
			t.Errorf("no relation for %s", api.Name)
			continue
		}
		if rel.Name != want[api.Name] {
			t.Errorf("%s -> %s, want %s", api.Name, rel.Name, want[api.Name])
		}
		if rel.Prefix != "provio" {
			t.Errorf("%s relation prefix = %q, want provio", api.Name, rel.Prefix)
		}
	}
	if _, ok := IORelationFor(File); ok {
		t.Error("IORelationFor accepted a non-activity class")
	}
}

func TestRelationCURIE(t *testing.T) {
	if got := WasReadBy.CURIE(); got != "provio:wasReadBy" {
		t.Errorf("CURIE = %q", got)
	}
	if got := WasDerivedFrom.CURIE(); got != "prov:wasDerivedFrom" {
		t.Errorf("CURIE = %q", got)
	}
}

func TestNamespacesBindings(t *testing.T) {
	ns := Namespaces()
	for _, p := range []string{"prov", "provio", "rdf", "xsd"} {
		if _, ok := ns.Base(p); !ok {
			t.Errorf("prefix %s unbound", p)
		}
	}
	iri, ok := ns.Expand("provio:wasReadBy")
	if !ok || iri != ProvIONS+"wasReadBy" {
		t.Errorf("Expand = %q, %v", iri, ok)
	}
}

func TestNodeIRIDeterministic(t *testing.T) {
	a := NodeIRI(File, "/data/westsac.h5")
	b := NodeIRI(File, "/data/westsac.h5")
	if a != b {
		t.Errorf("NodeIRI not deterministic: %q vs %q", a, b)
	}
	if NodeIRI(File, "/a") == NodeIRI(Dataset, "/a") {
		t.Error("different classes minted same IRI")
	}
	if NodeIRI(File, "/a") == NodeIRI(File, "/b") {
		t.Error("different identities minted same IRI")
	}
}

func TestNodeIRIEscaping(t *testing.T) {
	weird := NodeIRI(File, "/dir with space/ünïcode?.h5")
	if strings.ContainsAny(weird, " ?") {
		t.Errorf("IRI contains unsafe characters: %q", weird)
	}
	// Distinct unsafe identities must stay distinct after escaping.
	if NodeIRI(File, "/a b") == NodeIRI(File, "/a?b") {
		t.Error("escaping collided distinct identities")
	}
}

func TestActivityIRI(t *testing.T) {
	iri := ActivityIRI("H5Dcreate2", 0, 1)
	if !strings.HasSuffix(iri, "api/H5Dcreate2-p0-b1") {
		t.Errorf("ActivityIRI = %q", iri)
	}
	if ActivityIRI("x", 1, 2) == ActivityIRI("x", 1, 3) {
		t.Error("sequence numbers not distinguishing invocations")
	}
	if ActivityIRI("x", 1, 2) == ActivityIRI("x", 2, 2) {
		t.Error("pids not distinguishing invocations")
	}
}

func graphOf(ts []rdf.Triple) *rdf.Graph {
	g := rdf.NewGraph()
	g.AddAll(ts)
	return g
}

func TestDataObjectRecordTriples(t *testing.T) {
	prog := NodeIRI(Program, "decimate-a1")
	rec := DataObjectRecord{
		Class:        Dataset,
		ID:           "/westsac.h5/Timestep_0/x",
		Name:         "/Timestep_0/x",
		Container:    NodeIRI(File, "/westsac.h5"),
		AttributedTo: prog,
	}
	g := graphOf(rec.Triples())
	node := rec.IRI()
	if !g.Has(rdf.Triple{S: node, P: rdf.IRI(rdf.RDFType), O: Dataset.IRI()}) {
		t.Error("missing rdf:type triple")
	}
	if !g.Has(rdf.Triple{S: node, P: WasMemberOf.IRI(), O: SuperIRI(SuperEntity)}) {
		t.Error("missing membership triple")
	}
	if !g.Has(rdf.Triple{S: node, P: PropName.IRI(), O: rdf.Literal("/Timestep_0/x")}) {
		t.Error("missing name triple")
	}
	if !g.Has(rdf.Triple{S: node, P: WasDerivedFrom.IRI(), O: rdf.IRI(NodeIRI(File, "/westsac.h5"))}) {
		t.Error("missing container triple")
	}
	if !g.Has(rdf.Triple{S: node, P: WasAttributedTo.IRI(), O: rdf.IRI(prog)}) {
		t.Error("missing attribution triple")
	}
}

func TestDataObjectRecordDefaultsNameToID(t *testing.T) {
	rec := DataObjectRecord{Class: File, ID: "/x.h5"}
	g := graphOf(rec.Triples())
	if !g.Has(rdf.Triple{S: rec.IRI(), P: PropName.IRI(), O: rdf.Literal("/x.h5")}) {
		t.Error("name did not default to ID")
	}
	if g.Len() != 3 {
		t.Errorf("minimal record emitted %d triples, want 3", g.Len())
	}
}

func TestIOActivityRecordTriples(t *testing.T) {
	obj := DataObjectRecord{Class: Dataset, ID: "/f.h5/d"}
	agent := AgentRecord{Class: Thread, ID: "MPI_rank_0", Rank: 0}
	rec := IOActivityRecord{
		Class: Create, API: "H5Dcreate2", PID: 3, Seq: 7,
		Object: obj.IRI(), Agent: agent.IRI(),
		Elapsed: 1500 * time.Nanosecond, Started: time.Microsecond,
		TrackDuration: true,
	}
	g := graphOf(rec.Triples())
	node := rec.IRI()
	if !g.Has(rdf.Triple{S: node, P: rdf.IRI(rdf.RDFType), O: Create.IRI()}) {
		t.Error("missing type triple")
	}
	if !g.Has(rdf.Triple{S: obj.IRI(), P: WasCreatedBy.IRI(), O: node}) {
		t.Error("missing provio:wasCreatedBy triple (object -> activity)")
	}
	if !g.Has(rdf.Triple{S: node, P: AssociatedWith.IRI(), O: agent.IRI()}) {
		t.Error("missing association triple")
	}
	if !g.Has(rdf.Triple{S: node, P: PropElapsed.IRI(), O: rdf.Integer(1500)}) {
		t.Error("missing elapsed triple")
	}
	if !g.Has(rdf.Triple{S: node, P: PropTimestamp.IRI(), O: rdf.Integer(1000)}) {
		t.Error("missing startedAt triple")
	}
}

func TestIOActivityRecordWithoutDuration(t *testing.T) {
	rec := IOActivityRecord{Class: Read, API: "read", PID: 0, Seq: 1, Elapsed: time.Second}
	g := graphOf(rec.Triples())
	if got := g.Find(nil, PropElapsed.IRI().Ptr(), nil); len(got) != 0 {
		t.Errorf("duration emitted despite TrackDuration=false: %v", got)
	}
}

func TestAgentRecordTriples(t *testing.T) {
	user := AgentRecord{Class: User, ID: "bob", Name: "Bob"}
	prog := AgentRecord{Class: Program, ID: "vpicio_uni_h5.exe-a1", OnBehalfOf: user.IRI().Value}
	thr := AgentRecord{Class: Thread, ID: "MPI_rank_0", Rank: 0, OnBehalfOf: prog.IRI().Value}

	g := rdf.NewGraph()
	g.AddAll(user.Triples())
	g.AddAll(prog.Triples())
	g.AddAll(thr.Triples())

	if !g.Has(rdf.Triple{S: thr.IRI(), P: ActedOnBehalfOf.IRI(), O: prog.IRI()}) {
		t.Error("thread delegation missing")
	}
	if !g.Has(rdf.Triple{S: prog.IRI(), P: ActedOnBehalfOf.IRI(), O: user.IRI()}) {
		t.Error("program delegation missing")
	}
	if !g.Has(rdf.Triple{S: thr.IRI(), P: PropRank.IRI(), O: rdf.Integer(0)}) {
		t.Error("thread rank missing")
	}
	if !g.Has(rdf.Triple{S: user.IRI(), P: PropName.IRI(), O: rdf.Literal("Bob")}) {
		t.Error("user name missing")
	}
}

func TestAgentRecordRankSuppressed(t *testing.T) {
	prog := AgentRecord{Class: Program, ID: "p", Rank: 5} // Rank only applies to Thread
	g := graphOf(prog.Triples())
	if got := g.Find(nil, PropRank.IRI().Ptr(), nil); len(got) != 0 {
		t.Error("rank emitted for non-thread agent")
	}
	thr := AgentRecord{Class: Thread, ID: "t", Rank: -1}
	g2 := graphOf(thr.Triples())
	if got := g2.Find(nil, PropRank.IRI().Ptr(), nil); len(got) != 0 {
		t.Error("rank emitted despite -1 sentinel")
	}
}

func TestExtensibleRecordConfiguration(t *testing.T) {
	owner := NodeIRI(Program, "topreco")
	rec := ExtensibleRecord{
		Class: Configuration, Owner: owner, Key: "learning_rate",
		Value: rdf.Double(0.01), Version: 3, Accuracy: 0.91, HasAccuracy: true,
	}
	g := graphOf(rec.Triples())
	node := rec.IRI()
	if !g.Has(rdf.Triple{S: node, P: PropVersion.IRI(), O: rdf.Integer(3)}) {
		t.Error("missing version triple")
	}
	if !g.Has(rdf.Triple{S: node, P: PropAccuracy.IRI(), O: rdf.Double(0.91)}) {
		t.Error("missing accuracy triple")
	}
	if !g.Has(rdf.Triple{S: rdf.IRI(owner), P: PropConfig.IRI(), O: node}) {
		t.Error("missing owner link")
	}
}

func TestExtensibleRecordVersionsDistinct(t *testing.T) {
	a := ExtensibleRecord{Class: Configuration, Owner: "o", Key: "k", Version: 1}
	b := ExtensibleRecord{Class: Configuration, Owner: "o", Key: "k", Version: 2}
	if a.IRI() == b.IRI() {
		t.Error("different versions minted same IRI")
	}
	c := ExtensibleRecord{Class: Configuration, Owner: "o2", Key: "k", Version: 1}
	if a.IRI() == c.IRI() {
		t.Error("different owners minted same IRI")
	}
}

func TestExtensibleRecordOwnerLinkByClass(t *testing.T) {
	for _, c := range []struct {
		class Class
		rel   Relation
	}{{Type, PropType}, {Configuration, PropConfig}, {Metrics, PropMetric}} {
		rec := ExtensibleRecord{Class: c.class, Owner: "http://x/owner", Key: "k", Version: -1}
		g := graphOf(rec.Triples())
		if !g.Has(rdf.Triple{S: rdf.IRI("http://x/owner"), P: c.rel.IRI(), O: rec.IRI()}) {
			t.Errorf("owner link for %s should use %s", c.class.Name, c.rel.Name)
		}
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1234567: "1234567"}
	for n, want := range cases {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestAllRelationsHaveDescriptions(t *testing.T) {
	rels := AllRelations()
	if len(rels) != 12 {
		t.Fatalf("AllRelations = %d, want 12", len(rels))
	}
	for _, r := range rels {
		if r.Description == "" {
			t.Errorf("relation %s lacks description", r.Name)
		}
	}
}

func TestTable2RecordsRoundTripThroughTurtle(t *testing.T) {
	// Build the Figure 4(b) snippet and round-trip it through Turtle.
	user := AgentRecord{Class: User, ID: "Bob"}
	prog := AgentRecord{Class: Program, ID: "vpicio_uni_h5.exe-a1", OnBehalfOf: user.IRI().Value}
	thr := AgentRecord{Class: Thread, ID: "MPI_rank_0", Rank: 0, OnBehalfOf: prog.IRI().Value}
	ds := DataObjectRecord{Class: Dataset, ID: "/Timestep_0/x"}
	act := IOActivityRecord{Class: Create, API: "H5Dcreate2", PID: 0, Seq: 1, Object: ds.IRI(), Agent: thr.IRI()}

	g := rdf.NewGraph()
	for _, ts := range [][]rdf.Triple{user.Triples(), prog.Triples(), thr.Triples(), ds.Triples(), act.Triples()} {
		g.AddAll(ts)
	}
	var sb strings.Builder
	if err := rdf.WriteTurtle(&sb, g, Namespaces()); err != nil {
		t.Fatal(err)
	}
	g2, _, err := rdf.ParseTurtle(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}
	if g2.Len() != g.Len() {
		t.Errorf("round trip %d -> %d triples\n%s", g.Len(), g2.Len(), sb.String())
	}
}
