package model

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
)

// NodeIRI mints the globally unique IRI (GUID) for a provenance node.
//
// PROV-IO relies on GUIDs so that per-process sub-graphs merge without
// duplication (paper §5): two processes that touch the same data object must
// mint the same node IRI. We therefore derive data-object and agent IRIs
// deterministically from their identity (class + path/name), while activity
// IRIs — which denote individual API invocations — additionally embed the
// process and a per-process sequence number, mirroring the paper's
// "H5Dcreate2-b1" style identifiers.
//
// The class's namespace prefix is precomputed at class construction, so for
// the common already-IRI-safe identity this is one string concatenation.
func NodeIRI(class Class, identity string) string {
	prefix := class.nodePrefix
	if prefix == "" {
		// Zero or hand-built Class: fall back to computing the prefix.
		prefix = ProvIONS + strings.ToLower(class.Name) + "/"
	}
	return prefix + escapeIdentity(identity)
}

// ActivityIRI mints the IRI of one I/O API invocation: the API name, the
// process ID, and a per-process sequence number. Built by appending into a
// stack buffer — one allocation for the final string, no fmt machinery.
func ActivityIRI(apiName string, pid, seq int) string {
	var buf [96]byte
	b := append(buf[:0], ProvIONS...)
	b = append(b, "api/"...)
	b = append(b, apiName...)
	b = append(b, "-p"...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, "-b"...)
	b = strconv.AppendInt(b, int64(seq), 10)
	return string(b)
}

// escapeIdentity makes an arbitrary identity string safe inside an IRI while
// keeping common path characters readable. Identities that contain unsafe
// characters are suffixed with a short content hash to preserve uniqueness.
func escapeIdentity(id string) string {
	safe := true
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '/' || r == '.' || r == '-' || r == '_':
		default:
			safe = false
		}
		if !safe {
			break
		}
	}
	if safe {
		return strings.TrimPrefix(id, "/")
	}
	sum := sha256.Sum256([]byte(id))
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '/' || r == '.' || r == '-' || r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return strings.TrimPrefix(b.String(), "/") + "-" + hex.EncodeToString(sum[:4])
}
