// Package adios implements a second HPC I/O library in the style of ADIOS
// (the step-oriented BP format): an Engine opened on a file, BeginStep /
// Put / Get / EndStep, variables with shapes. The paper lists ADIOS
// integration as future work (§1.5); this package demonstrates the claim
// that the PROV-IO model extends to other I/O libraries — the engine
// invokes the same PROV-IO Library used by the HDF5 VOL connector and the
// POSIX wrapper, mapping Put/Get onto the Write/Read activity classes and
// variables onto Dataset entities.
//
// The on-disk format is a real framed binary layout ("PBP1"): a sequence of
// steps, each a block of named variable payloads, with a trailing index.
package adios

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

// Errors.
var (
	ErrBadMagic   = errors.New("adios: not a PBP file")
	ErrClosed     = errors.New("adios: engine closed")
	ErrNoStep     = errors.New("adios: no active step")
	ErrStepOpen   = errors.New("adios: step already active")
	ErrReadOnly   = errors.New("adios: engine opened for reading")
	ErrWriteOnly  = errors.New("adios: engine opened for writing")
	ErrNotFound   = errors.New("adios: variable not found")
	ErrOutOfRange = errors.New("adios: step out of range")
)

const magic = "PBP1"

// Mode selects engine direction.
type Mode int

// Engine modes.
const (
	ModeWrite Mode = iota
	ModeRead
)

// variable is one Put within a step.
type variable struct {
	name string
	dims []int
	data []byte
}

// step is one completed step.
type step struct {
	vars map[string]*variable
}

// Engine is an open ADIOS-style engine.
type Engine struct {
	view    *vfs.View
	path    string
	mode    Mode
	steps   []*step
	current *step
	closed  bool

	// Provenance (optional).
	tracker *core.Tracker
	agent   rdf.Term
	program rdf.Term
	started func() time.Duration
}

// Open creates (ModeWrite) or loads (ModeRead) an engine on path.
func Open(view *vfs.View, path string, mode Mode) (*Engine, error) {
	e := &Engine{view: view, path: path, mode: mode, started: func() time.Duration { return 0 }}
	if mode == ModeRead {
		if err := e.load(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// WithProvenance attaches a PROV-IO tracker; subsequent operations emit
// provenance records. agent is the acting Thread/Program agent; program is
// the Program node objects are attributed to.
func (e *Engine) WithProvenance(t *core.Tracker, agent, program rdf.Term) *Engine {
	e.tracker = t
	e.agent = agent
	e.program = program
	if e.tracker != nil {
		// The engine-open itself is an I/O API event.
		class, api := model.Open, "adios2_open"
		creating := e.mode == ModeWrite
		if creating {
			class, api = model.Create, "adios2_open"
		}
		attributed := rdf.Term{}
		if creating {
			attributed = program
		}
		node := t.TrackDataObject(model.File, e.path, e.path, rdf.Term{}, attributed)
		t.TrackIO(class, api, node, agent, e.started(), 0)
	}
	return e
}

// fileNode returns the engine file's node IRI (zero if File is untracked).
func (e *Engine) fileNode() rdf.Term {
	if e.tracker == nil || !e.tracker.Config().Enabled(model.File) {
		return rdf.Term{}
	}
	return rdf.IRI(model.NodeIRI(model.File, e.path))
}

// varID is the data-object identity of a variable.
func (e *Engine) varID(name string) string { return e.path + "/" + name }

// trackVar mints the Dataset entity for a variable.
func (e *Engine) trackVar(name string, creating bool) rdf.Term {
	if e.tracker == nil {
		return rdf.Term{}
	}
	if !e.tracker.Config().Enabled(model.Dataset) {
		return e.fileNode()
	}
	attributed := rdf.Term{}
	if creating {
		attributed = e.program
	}
	return e.tracker.TrackDataObject(model.Dataset, e.varID(name), name, e.fileNode(), attributed)
}

// BeginStep starts a new output/input step.
func (e *Engine) BeginStep() error {
	if e.closed {
		return ErrClosed
	}
	if e.current != nil {
		return ErrStepOpen
	}
	e.current = &step{vars: map[string]*variable{}}
	return nil
}

// Put stages a variable into the current step (ModeWrite only).
func (e *Engine) Put(name string, dims []int, data []byte) error {
	if e.closed {
		return ErrClosed
	}
	if e.mode != ModeWrite {
		return ErrReadOnly
	}
	if e.current == nil {
		return ErrNoStep
	}
	_, existed := e.current.vars[name]
	e.current.vars[name] = &variable{
		name: name,
		dims: append([]int(nil), dims...),
		data: append([]byte(nil), data...),
	}
	if e.tracker != nil {
		node := e.trackVar(name, !existed)
		e.tracker.TrackIO(model.Write, "adios2_put", node, e.agent, e.started(), 0)
	}
	return nil
}

// Get reads a variable from step index (ModeRead only).
func (e *Engine) Get(stepIdx int, name string) ([]byte, []int, error) {
	if e.closed {
		return nil, nil, ErrClosed
	}
	if e.mode != ModeRead {
		return nil, nil, ErrWriteOnly
	}
	if stepIdx < 0 || stepIdx >= len(e.steps) {
		return nil, nil, ErrOutOfRange
	}
	v, ok := e.steps[stepIdx].vars[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q in step %d", ErrNotFound, name, stepIdx)
	}
	if e.tracker != nil {
		node := e.trackVar(name, false)
		e.tracker.TrackIO(model.Read, "adios2_get", node, e.agent, e.started(), 0)
	}
	return append([]byte(nil), v.data...), append([]int(nil), v.dims...), nil
}

// EndStep commits the current step (write) or releases it (read).
func (e *Engine) EndStep() error {
	if e.closed {
		return ErrClosed
	}
	if e.current == nil {
		return ErrNoStep
	}
	if e.mode == ModeWrite {
		e.steps = append(e.steps, e.current)
	}
	e.current = nil
	return nil
}

// Steps returns the number of committed steps.
func (e *Engine) Steps() int { return len(e.steps) }

// Variables lists the variable names of a step, sorted.
func (e *Engine) Variables(stepIdx int) ([]string, error) {
	if stepIdx < 0 || stepIdx >= len(e.steps) {
		return nil, ErrOutOfRange
	}
	var names []string
	for n := range e.steps[stepIdx].vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Close flushes (write mode) and closes the engine.
func (e *Engine) Close() error {
	if e.closed {
		return ErrClosed
	}
	e.closed = true
	if e.mode == ModeWrite {
		if err := e.flush(); err != nil {
			return err
		}
		if e.tracker != nil {
			e.tracker.TrackIO(model.Fsync, "adios2_close", e.fileNode(), e.agent, e.started(), 0)
		}
	}
	return nil
}

// flush serializes all steps.
func (e *Engine) flush() error {
	var buf []byte
	buf = append(buf, magic...)
	buf = appendU32(buf, uint32(len(e.steps)))
	for _, s := range e.steps {
		var names []string
		for n := range s.vars {
			names = append(names, n)
		}
		sort.Strings(names)
		buf = appendU32(buf, uint32(len(names)))
		for _, n := range names {
			v := s.vars[n]
			buf = appendStr(buf, v.name)
			buf = appendU32(buf, uint32(len(v.dims)))
			for _, d := range v.dims {
				buf = appendU32(buf, uint32(d))
			}
			buf = appendU32(buf, uint32(len(v.data)))
			buf = append(buf, v.data...)
		}
	}
	return e.view.WriteFile(e.path, buf)
}

// load parses the file.
func (e *Engine) load() error {
	data, err := e.view.ReadFile(e.path)
	if err != nil {
		return err
	}
	if len(data) < 8 || string(data[:4]) != magic {
		return ErrBadMagic
	}
	pos := 4
	nSteps, pos, err := readU32(data, pos)
	if err != nil {
		return err
	}
	for s := 0; s < int(nSteps); s++ {
		st := &step{vars: map[string]*variable{}}
		var nVars uint32
		nVars, pos, err = readU32(data, pos)
		if err != nil {
			return err
		}
		for i := 0; i < int(nVars); i++ {
			var v variable
			v.name, pos, err = readStr(data, pos)
			if err != nil {
				return err
			}
			var rank uint32
			rank, pos, err = readU32(data, pos)
			if err != nil {
				return err
			}
			if rank > 64 {
				return fmt.Errorf("adios: implausible rank %d", rank)
			}
			v.dims = make([]int, rank)
			for d := range v.dims {
				var x uint32
				x, pos, err = readU32(data, pos)
				if err != nil {
					return err
				}
				v.dims[d] = int(x)
			}
			var n uint32
			n, pos, err = readU32(data, pos)
			if err != nil {
				return err
			}
			if pos+int(n) > len(data) {
				return errors.New("adios: truncated payload")
			}
			v.data = append([]byte(nil), data[pos:pos+int(n)]...)
			pos += int(n)
			st.vars[v.name] = &v
		}
		e.steps = append(e.steps, st)
	}
	return nil
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func readU32(data []byte, pos int) (uint32, int, error) {
	if pos+4 > len(data) {
		return 0, pos, errors.New("adios: truncated data")
	}
	return binary.LittleEndian.Uint32(data[pos:]), pos + 4, nil
}

func readStr(data []byte, pos int) (string, int, error) {
	n, pos, err := readU32(data, pos)
	if err != nil {
		return "", pos, err
	}
	if pos+int(n) > len(data) {
		return "", pos, errors.New("adios: truncated string")
	}
	return string(data[pos : pos+int(n)]), pos + int(n), nil
}
