package adios

import (
	"bytes"
	"errors"
	"testing"

	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/vfs"
)

func TestWriteReadRoundTrip(t *testing.T) {
	view := vfs.NewStore().NewView()
	w, err := Open(view, "/sim.bp", ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if err := w.BeginStep(); err != nil {
			t.Fatal(err)
		}
		if err := w.Put("temperature", []int{2, 2}, []byte{byte(s), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if err := w.Put("pressure", []int{4}, []byte{4, 5, 6, byte(s)}); err != nil {
			t.Fatal(err)
		}
		if err := w.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(view, "/sim.bp", ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps() != 3 {
		t.Fatalf("Steps = %d", r.Steps())
	}
	data, dims, err := r.Get(1, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 1, 2, 3}) || dims[0] != 2 || dims[1] != 2 {
		t.Errorf("Get = %v %v", data, dims)
	}
	names, err := r.Variables(0)
	if err != nil || len(names) != 2 || names[0] != "pressure" {
		t.Errorf("Variables = %v, %v", names, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestModeEnforcement(t *testing.T) {
	view := vfs.NewStore().NewView()
	w, _ := Open(view, "/f.bp", ModeWrite)
	w.BeginStep()
	if _, _, err := w.Get(0, "x"); !errors.Is(err, ErrWriteOnly) {
		t.Errorf("Get on writer err = %v", err)
	}
	w.Put("x", []int{1}, []byte{1})
	w.EndStep()
	w.Close()

	r, _ := Open(view, "/f.bp", ModeRead)
	r.BeginStep()
	if err := r.Put("x", []int{1}, []byte{1}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put on reader err = %v", err)
	}
}

func TestStepProtocol(t *testing.T) {
	view := vfs.NewStore().NewView()
	w, _ := Open(view, "/f.bp", ModeWrite)
	if err := w.Put("x", []int{1}, []byte{1}); !errors.Is(err, ErrNoStep) {
		t.Errorf("Put without step err = %v", err)
	}
	if err := w.EndStep(); !errors.Is(err, ErrNoStep) {
		t.Errorf("EndStep without step err = %v", err)
	}
	w.BeginStep()
	if err := w.BeginStep(); !errors.Is(err, ErrStepOpen) {
		t.Errorf("nested BeginStep err = %v", err)
	}
	w.EndStep()
	w.Close()
	if err := w.BeginStep(); !errors.Is(err, ErrClosed) {
		t.Errorf("BeginStep after close err = %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close err = %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	view := vfs.NewStore().NewView()
	view.WriteFile("/junk.bp", []byte("not a bp file at all"))
	if _, err := Open(view, "/junk.bp", ModeRead); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic err = %v", err)
	}
	if _, err := Open(view, "/missing.bp", ModeRead); err == nil {
		t.Error("missing file opened")
	}

	w, _ := Open(view, "/f.bp", ModeWrite)
	w.BeginStep()
	w.Put("x", []int{1}, []byte{1})
	w.EndStep()
	w.Close()
	r, _ := Open(view, "/f.bp", ModeRead)
	if _, _, err := r.Get(5, "x"); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range step err = %v", err)
	}
	if _, _, err := r.Get(0, "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing variable err = %v", err)
	}
	if _, err := r.Variables(9); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Variables range err = %v", err)
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	view := vfs.NewStore().NewView()
	w, _ := Open(view, "/f.bp", ModeWrite)
	w.BeginStep()
	w.Put("x", []int{8}, make([]byte, 8))
	w.EndStep()
	w.Close()
	raw, _ := view.ReadFile("/f.bp")
	view.WriteFile("/f.bp", raw[:len(raw)-3])
	if _, err := Open(view, "/f.bp", ModeRead); err == nil {
		t.Error("truncated file loaded")
	}
}

func TestProvenanceIntegration(t *testing.T) {
	view := vfs.NewStore().NewView()
	tracker := core.NewTracker(core.DefaultConfig(), nil, 0)
	user := tracker.RegisterUser("sim-user")
	prog := tracker.RegisterProgram("xgc-a1", user)

	w, err := Open(view, "/sim.bp", ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	w.WithProvenance(tracker, prog, prog)
	w.BeginStep()
	w.Put("temperature", []int{4}, make([]byte, 4))
	w.Put("temperature", []int{4}, make([]byte, 4)) // second Put, same var
	w.EndStep()
	w.Close()

	r, _ := Open(view, "/sim.bp", ModeRead)
	r.WithProvenance(tracker, prog, prog)
	if _, _, err := r.Get(0, "temperature"); err != nil {
		t.Fatal(err)
	}

	g := tracker.Graph()
	varNode := rdf.IRI(model.NodeIRI(model.Dataset, "/sim.bp/temperature"))
	if n := len(g.Find(varNode.Ptr(), model.WasWrittenBy.IRI().Ptr(), nil)); n != 2 {
		t.Errorf("wasWrittenBy = %d, want 2", n)
	}
	if n := len(g.Find(varNode.Ptr(), model.WasReadBy.IRI().Ptr(), nil)); n != 1 {
		t.Errorf("wasReadBy = %d, want 1", n)
	}
	fileNode := rdf.IRI(model.NodeIRI(model.File, "/sim.bp"))
	if !g.Has(rdf.Triple{S: varNode, P: model.WasDerivedFrom.IRI(), O: fileNode}) {
		t.Error("variable->file containment missing")
	}
	// Attribution: the writer program created the file.
	if !g.Has(rdf.Triple{S: fileNode, P: model.WasAttributedTo.IRI(), O: prog}) {
		t.Error("file attribution missing")
	}
	// Close emitted an Fsync activity.
	if n := len(g.Find(fileNode.Ptr(), model.WasFlushedBy.IRI().Ptr(), nil)); n != 1 {
		t.Errorf("wasFlushedBy = %d, want 1", n)
	}
}

func TestProvenanceGranularityFallback(t *testing.T) {
	// With only File enabled, Put attaches to the file node (the same
	// granularity knob as the VOL connector).
	view := vfs.NewStore().NewView()
	cfg := core.ScenarioConfig(false, "Create", "Open", "Read", "Write", "Fsync", "Rename", "File", "Program")
	tracker := core.NewTracker(cfg, nil, 0)
	prog := tracker.RegisterProgram("p", rdf.Term{})

	w, _ := Open(view, "/f.bp", ModeWrite)
	w.WithProvenance(tracker, prog, prog)
	w.BeginStep()
	w.Put("x", []int{1}, []byte{1})
	w.EndStep()
	w.Close()

	g := tracker.Graph()
	fileNode := rdf.IRI(model.NodeIRI(model.File, "/f.bp"))
	if n := len(g.Find(fileNode.Ptr(), model.WasWrittenBy.IRI().Ptr(), nil)); n != 1 {
		t.Errorf("file-granularity wasWrittenBy = %d, want 1", n)
	}
	if n := len(g.Find(nil, rdf.IRI(rdf.RDFType).Ptr(), model.Dataset.IRI().Ptr())); n != 0 {
		t.Errorf("dataset entities tracked despite disabled class: %d", n)
	}
}
