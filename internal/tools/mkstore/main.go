// Command mkstore writes a small demonstration provenance store: one
// completed run (sealed canonical file from Close) plus one periodic run left
// as sealed delta segments (Drain without Compact). CI's integrity smoke test
// and the README examples use it to get a real on-disk store without a full
// workload; it is internal tooling, not part of the shipped CLI set.
//
// Usage:
//
//	go run ./internal/tools/mkstore -dir ./prov [-format nt|ttl|pbs] [-records N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	dir := flag.String("dir", "", "store directory or spec to create (required; dir:/path | file:/run.pvs | mount:hot=...,cold=...)")
	formatFlag := flag.String("format", "pbs", "store codec: nt | ttl | pbs")
	records := flag.Int("records", 24, "I/O records per run")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mkstore: -dir is required")
		os.Exit(1)
	}
	format, err := provio.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkstore: %v\n", err)
		os.Exit(1)
	}
	if err := build(*dir, format, *records); err != nil {
		fmt.Fprintf(os.Stderr, "mkstore: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mkstore: wrote %s store to %s\n", *formatFlag, *dir)
}

func build(spec string, format provio.Format, records int) error {
	store, err := provio.OpenStore(spec, format)
	if err != nil {
		return err
	}

	// Run 1: a full tracked run, folded into a sealed canonical file by Close.
	tr := provio.NewTracker(provio.DefaultConfig(), store, 0)
	user := tr.RegisterUser("demo-user")
	prog := tr.RegisterProgram("demo.exe", user)
	for i := 0; i < records; i++ {
		obj := tr.TrackDataObject(provio.ModelFile, fmt.Sprintf("/data/f%d", i%8), "", provio.Term{}, prog)
		tr.TrackIO(provio.ModelWrite, "H5Dwrite", obj, prog, time.Duration(i)*time.Millisecond, 0)
	}
	if err := tr.Close(); err != nil {
		return err
	}

	// Run 2: a periodic run drained mid-flight, leaving sealed delta segments
	// on disk so the store exercises the whole chain shape.
	cfg := provio.DefaultConfig()
	cfg.Mode = provio.ModePeriodic
	cfg.FlushEvery = records/3 + 1
	tr = provio.NewTracker(cfg, store, 0)
	for i := 0; i < records; i++ {
		tr.TrackIO(provio.ModelRead, "H5Dread", provio.Term{}, provio.Term{},
			time.Duration(i)*time.Millisecond, 0)
	}
	return tr.Drain()
}
