package hdf5

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary metadata encoding. All integers are little-endian. Strings and byte
// blobs are u32-length-prefixed. The metadata block is the serialized root
// group; each object is encoded recursively.

const (
	magic         = "PH5F"
	formatVersion = 1
	superblockLen = 4 + 4 + 8 + 8 + 8 // magic, version, metaOff, metaLen, nextID
)

type encoder struct {
	buf bytes.Buffer
}

func (e *encoder) u8(v uint8) { e.buf.WriteByte(v) }
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) blob(b []byte) {
	e.u32(uint32(len(b)))
	e.buf.Write(b)
}

func (e *encoder) dims(dims []int) {
	e.u32(uint32(len(dims)))
	for _, d := range dims {
		e.i64(int64(d))
	}
}

func (e *encoder) datatype(t Datatype) {
	e.u8(uint8(t.Class))
	e.u32(uint32(t.Size))
}

func (e *encoder) attribute(a *attribute) {
	e.str(a.name)
	e.datatype(a.dtype)
	e.dims(a.dims)
	e.blob(a.value)
}

// object encodes o under the given directory-entry name. Objects reached a
// second time through a hard-link alias are encoded as a hard-link stub
// carrying only the target ID, so shared objects are stored once.
func (e *encoder) object(name string, o *object, seen map[uint64]bool) {
	if o.kind != kindSoftLink && o.kind != kindHardLink && seen[o.id] {
		e.u8(uint8(kindHardLink))
		e.u64(0)
		e.str(name)
		e.u32(0) // no attributes on the stub
		e.u64(o.id)
		return
	}
	if o.kind != kindSoftLink && o.kind != kindHardLink {
		seen[o.id] = true
	}
	e.u8(uint8(o.kind))
	e.u64(o.id)
	e.str(name)
	// Attributes (sorted for determinism).
	e.u32(uint32(len(o.attrs)))
	for _, an := range o.attrNames() {
		e.attribute(o.attrs[an])
	}
	switch o.kind {
	case kindGroup:
		e.u32(uint32(len(o.children)))
		for _, cn := range o.childNames() {
			e.object(cn, o.children[cn], seen)
		}
	case kindDataset:
		e.datatype(o.dtype)
		e.dims(o.dims)
		var flags uint8
		if o.deflate {
			flags |= 1
		}
		e.u8(flags)
		e.u32(uint32(len(o.segments)))
		for _, s := range o.segments {
			e.i64(s.rowStart)
			e.i64(s.rowCount)
			e.i64(s.offset)
			e.i64(s.length)
			e.i64(s.rawLength)
		}
	case kindDatatype:
		e.datatype(o.dtype)
	case kindSoftLink:
		e.str(o.target)
	case kindHardLink:
		e.u64(o.targetID)
	}
}

// encodeMetadata serializes the root group.
func encodeMetadata(root *object) []byte {
	var e encoder
	e.object("/", root, make(map[uint64]bool))
	return e.buf.Bytes()
}

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) fail(what string) error {
	return fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.pos)
}

func (d *decoder) u8() (uint8, error) {
	if d.pos+1 > len(d.data) {
		return 0, d.fail("u8")
	}
	v := d.data[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.data) {
		return 0, d.fail("u32")
	}
	v := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.pos+8 > len(d.data) {
		return 0, d.fail("u64")
	}
	v := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *decoder) i64() (int64, error) {
	v, err := d.u64()
	return int64(v), err
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.data) {
		return "", d.fail("string")
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) blob() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if d.pos+int(n) > len(d.data) {
		return nil, d.fail("blob")
	}
	b := append([]byte(nil), d.data[d.pos:d.pos+int(n)]...)
	d.pos += int(n)
	return b, nil
}

func (d *decoder) dims() ([]int, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if n > 64 {
		return nil, d.fail("rank")
	}
	out := make([]int, n)
	for i := range out {
		v, err := d.i64()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

func (d *decoder) datatype() (Datatype, error) {
	cls, err := d.u8()
	if err != nil {
		return Datatype{}, err
	}
	size, err := d.u32()
	if err != nil {
		return Datatype{}, err
	}
	t := Datatype{Class: TypeClass(cls), Size: int(size)}
	if !t.Valid() {
		return Datatype{}, fmt.Errorf("%w: invalid datatype %d/%d", ErrCorrupt, cls, size)
	}
	return t, nil
}

func (d *decoder) attribute() (*attribute, error) {
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	dt, err := d.datatype()
	if err != nil {
		return nil, err
	}
	dims, err := d.dims()
	if err != nil {
		return nil, err
	}
	val, err := d.blob()
	if err != nil {
		return nil, err
	}
	return &attribute{name: name, dtype: dt, dims: dims, value: val}, nil
}

func (d *decoder) object() (*object, error) {
	kind, err := d.u8()
	if err != nil {
		return nil, err
	}
	id, err := d.u64()
	if err != nil {
		return nil, err
	}
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	o := &object{kind: objKind(kind), id: id, name: name, attrs: make(map[string]*attribute)}
	nAttrs, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nAttrs); i++ {
		a, err := d.attribute()
		if err != nil {
			return nil, err
		}
		o.attrs[a.name] = a
	}
	switch o.kind {
	case kindGroup:
		o.children = make(map[string]*object)
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(n); i++ {
			child, err := d.object()
			if err != nil {
				return nil, err
			}
			o.children[child.name] = child
		}
	case kindDataset:
		if o.dtype, err = d.datatype(); err != nil {
			return nil, err
		}
		if o.dims, err = d.dims(); err != nil {
			return nil, err
		}
		flags, err := d.u8()
		if err != nil {
			return nil, err
		}
		o.deflate = flags&1 != 0
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(n); i++ {
			var s segment
			if s.rowStart, err = d.i64(); err != nil {
				return nil, err
			}
			if s.rowCount, err = d.i64(); err != nil {
				return nil, err
			}
			if s.offset, err = d.i64(); err != nil {
				return nil, err
			}
			if s.length, err = d.i64(); err != nil {
				return nil, err
			}
			if s.rawLength, err = d.i64(); err != nil {
				return nil, err
			}
			o.segments = append(o.segments, s)
		}
	case kindDatatype:
		if o.dtype, err = d.datatype(); err != nil {
			return nil, err
		}
	case kindSoftLink:
		if o.target, err = d.str(); err != nil {
			return nil, err
		}
	case kindHardLink:
		if o.targetID, err = d.u64(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown object kind %d", ErrCorrupt, kind)
	}
	return o, nil
}

// decodeMetadata parses a metadata block into the root group and resolves
// hard-link stubs back into shared object pointers.
func decodeMetadata(data []byte) (*object, error) {
	d := &decoder{data: data}
	root, err := d.object()
	if err != nil {
		return nil, err
	}
	if root.kind != kindGroup {
		return nil, fmt.Errorf("%w: root is not a group", ErrCorrupt)
	}
	byID := make(map[uint64]*object)
	indexObjects(root, byID)
	resolveStubs(root, byID)
	return root, nil
}

func indexObjects(o *object, byID map[uint64]*object) {
	if o.kind == kindSoftLink || o.kind == kindHardLink {
		return
	}
	byID[o.id] = o
	if o.kind == kindGroup {
		for _, c := range o.children {
			indexObjects(c, byID)
		}
	}
}

func resolveStubs(o *object, byID map[uint64]*object) {
	if o.kind != kindGroup {
		return
	}
	for name, c := range o.children {
		if c.kind == kindHardLink {
			if target, ok := byID[c.targetID]; ok {
				o.children[name] = target
			}
			continue
		}
		resolveStubs(c, byID)
	}
}
