package hdf5

import (
	"sort"
	"strings"
)

// objKind discriminates the metadata object kinds.
type objKind uint8

const (
	kindGroup objKind = iota + 1
	kindDataset
	kindDatatype
	kindSoftLink
	kindHardLink
)

// object is the in-memory metadata node. The whole metadata tree is held in
// memory while a file is open (like the HDF5 object header cache) and
// serialized to the metadata block on flush/close.
type object struct {
	kind objKind
	id   uint64 // object ID, stable across hard links
	name string

	// group
	children map[string]*object

	// dataset
	dtype    Datatype
	dims     []int     // current extent; dims[0] may grow via Append
	segments []segment // raw-data versions, applied in order
	// deflate enables the gzip-style compression filter on raw segments
	// (the H5Pset_deflate analog).
	deflate bool

	// attributes (groups, datasets, named datatypes)
	attrs map[string]*attribute

	// links
	target   string // soft link target path
	targetID uint64 // hard link target object ID
}

// segment is one contiguous raw-data extent in the file covering rows
// [rowStart, rowStart+rowCount) of dimension 0. Later segments shadow
// earlier ones, which is how overwrite and append produce dataset versions.
type segment struct {
	rowStart int64
	rowCount int64
	offset   int64 // byte offset in the vfs file
	length   int64 // stored byte length (compressed size under deflate)
	// rawLength is the uncompressed byte length; 0 means the segment is
	// stored raw (no filter).
	rawLength int64
}

// attribute is a small typed value attached to an object; values live in
// the metadata block, like HDF5 compact attribute storage.
type attribute struct {
	name  string
	dtype Datatype
	dims  []int
	value []byte
}

func newGroup(name string, id uint64) *object {
	return &object{kind: kindGroup, id: id, name: name,
		children: make(map[string]*object), attrs: make(map[string]*attribute)}
}

func newDataset(name string, id uint64, dt Datatype, dims []int) *object {
	d := &object{kind: kindDataset, id: id, name: name, dtype: dt,
		dims: append([]int(nil), dims...), attrs: make(map[string]*attribute)}
	return d
}

// childNames returns sorted child names of a group.
func (o *object) childNames() []string {
	names := make([]string, 0, len(o.children))
	for n := range o.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// attrNames returns sorted attribute names.
func (o *object) attrNames() []string {
	names := make([]string, 0, len(o.attrs))
	for n := range o.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// validName reports whether an object name component is legal: non-empty,
// no '/', not "." or "..".
func validName(name string) bool {
	return name != "" && name != "." && name != ".." && !strings.Contains(name, "/")
}

// rowSize returns the byte size of one dimension-0 row of a dataset.
func (o *object) rowSize() int64 {
	n := int64(o.dtype.Size)
	for _, d := range o.dims[1:] {
		n *= int64(d)
	}
	return n
}

// byteSize returns the dataset's logical byte size.
func (o *object) byteSize() int64 {
	if len(o.dims) == 0 {
		return 0
	}
	return o.rowSize() * int64(o.dims[0])
}
