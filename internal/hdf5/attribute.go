package hdf5

import (
	"encoding/binary"
	"math"
)

// AttrHost is any object that can carry attributes: groups, datasets, and
// named datatypes (matching HDF5, where attributes attach to any object).
type AttrHost interface {
	host() *object
	hfile() *File
	hpath() string
}

// Object is any addressable object in a file: it hosts attributes and has a
// path. The Virtual Object Layer (internal/vol) intercepts operations in
// terms of this interface.
type Object interface {
	AttrHost
	Path() string
	File() *File
}

// Statically assert the three hosts.
var (
	_ Object = (*Group)(nil)
	_ Object = (*Dataset)(nil)
	_ Object = (*NamedDatatype)(nil)
)

// CreateAttribute attaches a typed attribute to an object (H5Acreate +
// H5Awrite). An existing attribute of the same name is replaced.
func CreateAttribute(h AttrHost, name string, dt Datatype, dims []int, value []byte) error {
	f := h.hfile()
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkWritable(); err != nil {
		return err
	}
	if !validName(name) {
		return ErrBadName
	}
	if !dt.Valid() {
		return ErrTypeMismatch
	}
	n, err := elemCount(dims)
	if err != nil {
		return err
	}
	if int64(len(value)) != n*int64(dt.Size) {
		return ErrShape
	}
	h.host().attrs[name] = &attribute{
		name: name, dtype: dt, dims: append([]int(nil), dims...),
		value: append([]byte(nil), value...),
	}
	f.dirty = true
	return nil
}

// AttrInfo describes an attribute.
type AttrInfo struct {
	Name     string
	Datatype Datatype
	Dims     []int
}

// ReadAttribute reads an attribute's raw value (H5Aopen + H5Aread).
func ReadAttribute(h AttrHost, name string) ([]byte, AttrInfo, error) {
	f := h.hfile()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, AttrInfo{}, ErrClosed
	}
	a, ok := h.host().attrs[name]
	if !ok {
		return nil, AttrInfo{}, ErrAttrNotExist
	}
	info := AttrInfo{Name: a.name, Datatype: a.dtype, Dims: append([]int(nil), a.dims...)}
	return append([]byte(nil), a.value...), info, nil
}

// DeleteAttribute removes an attribute (H5Adelete).
func DeleteAttribute(h AttrHost, name string) error {
	f := h.hfile()
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkWritable(); err != nil {
		return err
	}
	if _, ok := h.host().attrs[name]; !ok {
		return ErrAttrNotExist
	}
	delete(h.host().attrs, name)
	f.dirty = true
	return nil
}

// ListAttributes returns the object's attribute names, sorted.
func ListAttributes(h AttrHost) []string {
	f := h.hfile()
	f.mu.Lock()
	defer f.mu.Unlock()
	return h.host().attrNames()
}

// Typed convenience helpers, mirroring common H5LT usage.

// SetStringAttribute stores a string attribute (fixed-size string type).
func SetStringAttribute(h AttrHost, name, value string) error {
	n := len(value)
	if n == 0 {
		n = 1
	}
	buf := make([]byte, n)
	copy(buf, value)
	return CreateAttribute(h, name, TypeString(n), []int{1}, buf)
}

// GetStringAttribute reads a string attribute, trimming NUL padding.
func GetStringAttribute(h AttrHost, name string) (string, error) {
	raw, info, err := ReadAttribute(h, name)
	if err != nil {
		return "", err
	}
	if info.Datatype.Class != ClassString {
		return "", ErrTypeMismatch
	}
	end := len(raw)
	for end > 0 && raw[end-1] == 0 {
		end--
	}
	return string(raw[:end]), nil
}

// SetInt64Attribute stores a scalar int64 attribute.
func SetInt64Attribute(h AttrHost, name string, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return CreateAttribute(h, name, TypeInt64, []int{1}, buf[:])
}

// GetInt64Attribute reads a scalar int64 attribute.
func GetInt64Attribute(h AttrHost, name string) (int64, error) {
	raw, info, err := ReadAttribute(h, name)
	if err != nil {
		return 0, err
	}
	if info.Datatype != TypeInt64 || len(raw) != 8 {
		return 0, ErrTypeMismatch
	}
	return int64(binary.LittleEndian.Uint64(raw)), nil
}

// SetFloat64Attribute stores a scalar float64 attribute.
func SetFloat64Attribute(h AttrHost, name string, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return CreateAttribute(h, name, TypeFloat64, []int{1}, buf[:])
}

// GetFloat64Attribute reads a scalar float64 attribute.
func GetFloat64Attribute(h AttrHost, name string) (float64, error) {
	raw, info, err := ReadAttribute(h, name)
	if err != nil {
		return 0, err
	}
	if info.Datatype != TypeFloat64 || len(raw) != 8 {
		return 0, ErrTypeMismatch
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw)), nil
}
