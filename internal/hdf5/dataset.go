package hdf5

import (
	"bytes"
	"compress/flate"
	"io"
)

// Dataset is a handle on a dataset object.
type Dataset struct {
	file *File
	obj  *object
	path string
}

// Path returns the dataset's absolute path within the file.
func (d *Dataset) Path() string { return d.path }

// File returns the owning file.
func (d *Dataset) File() *File { return d.file }

// Datatype returns the element type.
func (d *Dataset) Datatype() Datatype {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	return d.obj.dtype
}

// Dims returns the current extent.
func (d *Dataset) Dims() []int {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	return append([]int(nil), d.obj.dims...)
}

// ByteSize returns the logical dataset size in bytes.
func (d *Dataset) ByteSize() int64 {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	return d.obj.byteSize()
}

// Deflate reports whether the compression filter is enabled.
func (d *Dataset) Deflate() bool {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	return d.obj.deflate
}

// StoredBytes returns the summed on-disk size of the dataset's segments
// (compressed size under the deflate filter).
func (d *Dataset) StoredBytes() int64 {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	var n int64
	for _, s := range d.obj.segments {
		n += s.length
	}
	return n
}

// Versions returns the number of raw segments recorded for the dataset —
// each overwrite/append adds one, which is how the H5bench workflow observes
// "multiple versions of a dataset".
func (d *Dataset) Versions() int {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	return len(d.obj.segments)
}

// Write replaces the dataset's full contents (H5Dwrite over the whole
// dataspace). len(data) must equal the dataset's byte size.
func (d *Dataset) Write(data []byte) error {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	if err := d.file.checkWritable(); err != nil {
		return err
	}
	if int64(len(data)) != d.obj.byteSize() {
		return ErrShape
	}
	return d.writeRowsLocked(0, int64(d.obj.dims[0]), data)
}

// WriteRows overwrites rows [start, start+count) of dimension 0 (H5Dwrite
// with a hyperslab selection). data must contain count full rows.
func (d *Dataset) WriteRows(start, count int, data []byte) error {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	if err := d.file.checkWritable(); err != nil {
		return err
	}
	if start < 0 || count < 0 || start+count > d.obj.dims[0] {
		return ErrBounds
	}
	if int64(len(data)) != int64(count)*d.obj.rowSize() {
		return ErrShape
	}
	return d.writeRowsLocked(int64(start), int64(count), data)
}

// writeRowsLocked appends a raw-data segment covering the row range and
// records it in the dataset's segment list. With the deflate filter enabled
// the segment is stored compressed (the H5Pset_deflate analog).
func (d *Dataset) writeRowsLocked(rowStart, rowCount int64, data []byte) error {
	stored := data
	var rawLength int64
	if d.obj.deflate {
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return err
		}
		if _, err := zw.Write(data); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		stored = buf.Bytes()
		rawLength = int64(len(data))
	}
	off := d.file.allocate(int64(len(stored)))
	if _, err := d.file.f.WriteAt(stored, off); err != nil {
		return err
	}
	d.obj.segments = append(d.obj.segments, segment{
		rowStart: rowStart, rowCount: rowCount, offset: off,
		length: int64(len(stored)), rawLength: rawLength,
	})
	d.file.dirty = true
	return nil
}

// segmentData loads (and, for filtered segments, decompresses) a segment's
// full raw contents.
func (d *Dataset) segmentData(s segment) ([]byte, error) {
	stored := make([]byte, s.length)
	if s.length > 0 {
		if _, err := d.file.f.ReadAt(stored, s.offset); err != nil {
			return nil, err
		}
	}
	if s.rawLength == 0 {
		return stored, nil
	}
	zr := flate.NewReader(bytes.NewReader(stored))
	defer zr.Close()
	raw := make([]byte, s.rawLength)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Append extends dimension 0 by rows additional rows and writes data into
// the new region (the H5bench 'append' operation). data must contain rows
// full rows.
func (d *Dataset) Append(rows int, data []byte) error {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	if err := d.file.checkWritable(); err != nil {
		return err
	}
	if rows <= 0 {
		return ErrShape
	}
	if int64(len(data)) != int64(rows)*d.obj.rowSize() {
		return ErrShape
	}
	start := int64(d.obj.dims[0])
	d.obj.dims[0] += rows
	return d.writeRowsLocked(start, int64(rows), data)
}

// Read returns the dataset's full logical contents, reconstructed by
// replaying the segment list (later segments shadow earlier ones).
func (d *Dataset) Read() ([]byte, error) {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	if d.file.closed {
		return nil, ErrClosed
	}
	return d.readRowsLocked(0, int64(d.obj.dims[0]))
}

// ReadRows reads rows [start, start+count) of dimension 0 (H5Dread with a
// hyperslab selection).
func (d *Dataset) ReadRows(start, count int) ([]byte, error) {
	d.file.mu.Lock()
	defer d.file.mu.Unlock()
	if d.file.closed {
		return nil, ErrClosed
	}
	if start < 0 || count < 0 || start+count > d.obj.dims[0] {
		return nil, ErrBounds
	}
	return d.readRowsLocked(int64(start), int64(count))
}

func (d *Dataset) readRowsLocked(rowStart, rowCount int64) ([]byte, error) {
	rowSize := d.obj.rowSize()
	out := make([]byte, rowCount*rowSize)
	reqEnd := rowStart + rowCount
	for _, s := range d.obj.segments {
		segEnd := s.rowStart + s.rowCount
		// Intersect [s.rowStart, segEnd) with [rowStart, reqEnd).
		lo, hi := s.rowStart, segEnd
		if lo < rowStart {
			lo = rowStart
		}
		if hi > reqEnd {
			hi = reqEnd
		}
		if lo >= hi {
			continue
		}
		dstOff := (lo - rowStart) * rowSize
		n := (hi - lo) * rowSize
		if s.rawLength == 0 {
			// Unfiltered segments support partial reads directly.
			srcOff := s.offset + (lo-s.rowStart)*rowSize
			if _, err := d.file.f.ReadAt(out[dstOff:dstOff+n], srcOff); err != nil {
				return nil, err
			}
			continue
		}
		// Filtered segments decompress as a whole (like HDF5 chunks).
		raw, err := d.segmentData(s)
		if err != nil {
			return nil, err
		}
		srcOff := (lo - s.rowStart) * rowSize
		copy(out[dstOff:dstOff+n], raw[srcOff:srcOff+n])
	}
	return out, nil
}

func (d *Dataset) host() *object { return d.obj }
func (d *Dataset) hfile() *File  { return d.file }
func (d *Dataset) hpath() string { return d.path }
