package hdf5

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/hpc-io/prov-io/internal/vfs"
)

// TestDatasetSegmentsMatchOracle drives a dataset through random sequences
// of full writes, row overwrites, appends, and flush/reopen cycles, checking
// after every step that the segment-reconstructed contents equal a plain
// byte-slice oracle. This pins the overwrite/append versioning semantics the
// H5bench workflow depends on.
func TestDatasetSegmentsMatchOracle(t *testing.T) {
	const rowSize = 3 // dims[1:] = {3}, uint8

	type op struct {
		kind byte
		a, b uint8
	}
	run := func(ops []op) bool {
		view := vfs.NewStore().NewView()
		f, err := Create(view, "/o.h5")
		if err != nil {
			return false
		}
		ds, err := f.Root().CreateDataset("d", TypeUint8, []int{4, rowSize})
		if err != nil {
			return false
		}
		oracle := make([]byte, 4*rowSize)
		fillSeq := byte(1)
		next := func(n int) []byte {
			out := make([]byte, n)
			for i := range out {
				out[i] = fillSeq
				fillSeq++
			}
			return out
		}

		for _, o := range ops {
			rows := len(oracle) / rowSize
			switch o.kind % 4 {
			case 0: // full write
				data := next(len(oracle))
				if err := ds.Write(data); err != nil {
					return false
				}
				copy(oracle, data)
			case 1: // row overwrite
				if rows == 0 {
					continue
				}
				start := int(o.a) % rows
				count := int(o.b)%(rows-start) + 1
				data := next(count * rowSize)
				if err := ds.WriteRows(start, count, data); err != nil {
					return false
				}
				copy(oracle[start*rowSize:], data)
			case 2: // append
				count := int(o.a)%3 + 1
				data := next(count * rowSize)
				if err := ds.Append(count, data); err != nil {
					return false
				}
				oracle = append(oracle, data...)
			case 3: // flush + reopen
				if err := f.Close(); err != nil {
					return false
				}
				f, err = Open(view, "/o.h5", false)
				if err != nil {
					return false
				}
				ds, err = f.Root().OpenDataset("d")
				if err != nil {
					return false
				}
			}
			got, err := ds.Read()
			if err != nil {
				return false
			}
			if !bytes.Equal(got, oracle) {
				t.Logf("mismatch after op %+v: got %v want %v", o, got, oracle)
				return false
			}
			// Row-range reads agree too.
			if rows := len(oracle) / rowSize; rows > 1 {
				part, err := ds.ReadRows(1, rows-1)
				if err != nil {
					return false
				}
				if !bytes.Equal(part, oracle[rowSize:]) {
					return false
				}
			}
		}
		return f.Close() == nil
	}

	f := func(raw []byte) bool {
		var ops []op
		for i := 0; i+2 < len(raw) && len(ops) < 24; i += 3 {
			ops = append(ops, op{kind: raw[i], a: raw[i+1], b: raw[i+2]})
		}
		return run(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
