// Package hdf5 implements a from-scratch hierarchical data format with the
// object model the PROV-IO paper depends on: files containing groups,
// datasets, attributes, named datatypes, and links, with chunk-versioned
// dataset storage that supports the H5bench 'overwrite' and 'append'
// operations. The on-disk representation is a real binary format persisted
// through the vfs substrate (superblock + raw data segments + serialized
// metadata block), so storage sizes and I/O volumes are genuine.
//
// The package replaces the HDF5 C library in this reproduction; see
// internal/vol for the Virtual Object Layer that intercepts the API calls.
package hdf5

import (
	"errors"
	"fmt"
)

// Errors returned by the hdf5 package.
var (
	ErrBadMagic     = errors.New("hdf5: not a PH5F file")
	ErrBadVersion   = errors.New("hdf5: unsupported format version")
	ErrCorrupt      = errors.New("hdf5: corrupt metadata")
	ErrExist        = errors.New("hdf5: object already exists")
	ErrNotExist     = errors.New("hdf5: object does not exist")
	ErrNotGroup     = errors.New("hdf5: object is not a group")
	ErrNotDataset   = errors.New("hdf5: object is not a dataset")
	ErrNotDatatype  = errors.New("hdf5: object is not a named datatype")
	ErrClosed       = errors.New("hdf5: file is closed")
	ErrReadOnly     = errors.New("hdf5: file opened read-only")
	ErrShape        = errors.New("hdf5: shape mismatch")
	ErrBounds       = errors.New("hdf5: selection out of bounds")
	ErrBadName      = errors.New("hdf5: invalid object name")
	ErrLinkDangling = errors.New("hdf5: dangling link")
	ErrAttrNotExist = errors.New("hdf5: attribute does not exist")
	ErrTypeMismatch = errors.New("hdf5: datatype mismatch")
)

// TypeClass enumerates the supported element classes.
type TypeClass uint8

// Type classes.
const (
	ClassInt TypeClass = iota + 1
	ClassUint
	ClassFloat
	ClassString // fixed-size, NUL-padded
)

// Datatype describes dataset/attribute element types.
type Datatype struct {
	Class TypeClass
	// Size is the element size in bytes (for ClassString, the fixed
	// string length).
	Size int
}

// Predefined datatypes mirroring the HDF5 native types.
var (
	TypeInt8    = Datatype{ClassInt, 1}
	TypeInt32   = Datatype{ClassInt, 4}
	TypeInt64   = Datatype{ClassInt, 8}
	TypeUint8   = Datatype{ClassUint, 1}
	TypeUint32  = Datatype{ClassUint, 4}
	TypeUint64  = Datatype{ClassUint, 8}
	TypeFloat32 = Datatype{ClassFloat, 4}
	TypeFloat64 = Datatype{ClassFloat, 8}
)

// TypeString returns a fixed-size string datatype of n bytes.
func TypeString(n int) Datatype { return Datatype{ClassString, n} }

// Valid reports whether the datatype is well-formed.
func (t Datatype) Valid() bool {
	switch t.Class {
	case ClassInt, ClassUint:
		return t.Size == 1 || t.Size == 2 || t.Size == 4 || t.Size == 8
	case ClassFloat:
		return t.Size == 4 || t.Size == 8
	case ClassString:
		return t.Size > 0 && t.Size <= 1<<16
	}
	return false
}

// String renders the type like "int64" or "string16".
func (t Datatype) String() string {
	switch t.Class {
	case ClassInt:
		return fmt.Sprintf("int%d", t.Size*8)
	case ClassUint:
		return fmt.Sprintf("uint%d", t.Size*8)
	case ClassFloat:
		return fmt.Sprintf("float%d", t.Size*8)
	case ClassString:
		return fmt.Sprintf("string%d", t.Size)
	default:
		return "invalid"
	}
}

// elemCount returns the number of elements for dims, or an error on
// non-positive extents.
func elemCount(dims []int) (int64, error) {
	if len(dims) == 0 {
		return 0, ErrShape
	}
	n := int64(1)
	for _, d := range dims {
		if d < 0 {
			return 0, ErrShape
		}
		n *= int64(d)
	}
	return n, nil
}
