package hdf5

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"github.com/hpc-io/prov-io/internal/vfs"
)

// File is an open PH5F file: a superblock, raw dataset segments, and a
// metadata block holding the serialized object tree.
type File struct {
	mu       sync.Mutex
	view     *vfs.View
	f        *vfs.File
	path     string
	root     *object
	nextID   uint64
	writable bool
	closed   bool
	dirty    bool
	// alloc is the next free byte offset for raw data segments.
	alloc int64
}

// Create creates (or truncates) a PH5F file at path.
func Create(view *vfs.View, path string) (*File, error) {
	f, err := view.OpenFile(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC)
	if err != nil {
		return nil, err
	}
	h := &File{
		view: view, f: f, path: path,
		root:     newGroup("/", 1),
		nextID:   2,
		writable: true,
		alloc:    superblockLen,
		dirty:    true,
	}
	if err := h.writeSuperblock(0, 0); err != nil {
		f.Close()
		return nil, err
	}
	return h, nil
}

// Open opens an existing PH5F file. readonly guards against modification.
func Open(view *vfs.View, path string, readonly bool) (*File, error) {
	flag := vfs.O_RDWR
	if readonly {
		flag = vfs.O_RDONLY
	}
	f, err := view.OpenFile(path, flag)
	if err != nil {
		return nil, err
	}
	var sb [superblockLen]byte
	if _, err := f.ReadAt(sb[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: cannot read superblock (%v)", ErrBadMagic, err)
	}
	if string(sb[:4]) != magic {
		f.Close()
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(sb[4:8]); v != formatVersion {
		f.Close()
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	metaOff := int64(binary.LittleEndian.Uint64(sb[8:16]))
	metaLen := int64(binary.LittleEndian.Uint64(sb[16:24]))
	nextID := binary.LittleEndian.Uint64(sb[24:32])

	h := &File{view: view, f: f, path: path, writable: !readonly, nextID: nextID}
	if metaLen == 0 {
		// Freshly created, never-flushed file.
		h.root = newGroup("/", 1)
		h.alloc = superblockLen
		if h.nextID < 2 {
			h.nextID = 2
		}
		return h, nil
	}
	meta := make([]byte, metaLen)
	if _, err := f.ReadAt(meta, metaOff); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: metadata read failed (%v)", ErrCorrupt, err)
	}
	root, err := decodeMetadata(meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	h.root = root
	// New raw data goes after the old metadata block; the old block
	// becomes garbage that the next flush supersedes (log-structured).
	h.alloc = metaOff + metaLen
	return h, nil
}

// IsPH5F reports whether the file at path looks like a PH5F file.
func IsPH5F(view *vfs.View, path string) bool {
	f, err := view.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [4]byte
	if _, err := f.ReadAt(m[:], 0); err != nil {
		return false
	}
	return string(m[:]) == magic
}

func (h *File) writeSuperblock(metaOff, metaLen int64) error {
	var sb [superblockLen]byte
	copy(sb[:4], magic)
	binary.LittleEndian.PutUint32(sb[4:8], formatVersion)
	binary.LittleEndian.PutUint64(sb[8:16], uint64(metaOff))
	binary.LittleEndian.PutUint64(sb[16:24], uint64(metaLen))
	binary.LittleEndian.PutUint64(sb[24:32], h.nextID)
	_, err := h.f.WriteAt(sb[:], 0)
	return err
}

// Path returns the file's path in the vfs namespace.
func (h *File) Path() string { return h.path }

// Root returns the root group.
func (h *File) Root() *Group {
	return &Group{file: h, obj: h.root, path: "/"}
}

// Flush serializes metadata and updates the superblock (H5Fflush).
func (h *File) Flush() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.flushLocked()
}

func (h *File) flushLocked() error {
	if h.closed {
		return ErrClosed
	}
	if !h.writable {
		return nil // read-only flush is a no-op, like HDF5
	}
	meta := encodeMetadata(h.root)
	off := h.alloc
	if _, err := h.f.WriteAt(meta, off); err != nil {
		return err
	}
	h.alloc = off + int64(len(meta))
	if err := h.writeSuperblock(off, int64(len(meta))); err != nil {
		return err
	}
	if err := h.f.Sync(); err != nil {
		return err
	}
	h.dirty = false
	return nil
}

// Close flushes (when writable) and closes the file.
func (h *File) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	if h.writable && h.dirty {
		if err := h.flushLocked(); err != nil {
			return err
		}
	}
	h.closed = true
	return h.f.Close()
}

// allocate reserves n bytes of raw-data space and returns the offset.
func (h *File) allocate(n int64) int64 {
	off := h.alloc
	h.alloc += n
	return off
}

func (h *File) newID() uint64 {
	id := h.nextID
	h.nextID++
	return id
}

// resolveObject walks an absolute or group-relative path to an object,
// following soft and hard links.
func (h *File) resolveObject(start *object, p string, depth int) (*object, error) {
	if depth > 16 {
		return nil, ErrLinkDangling
	}
	cur := start
	if strings.HasPrefix(p, "/") {
		cur = h.root
	}
	parts := strings.Split(strings.Trim(p, "/"), "/")
	if len(parts) == 1 && parts[0] == "" {
		return cur, nil
	}
	for i, part := range parts {
		if cur.kind != kindGroup {
			return nil, ErrNotGroup
		}
		child, ok := cur.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		switch child.kind {
		case kindSoftLink:
			rest := strings.Join(parts[i+1:], "/")
			target := child.target
			if rest != "" {
				target = strings.TrimSuffix(target, "/") + "/" + rest
			}
			base := cur
			return h.resolveObject(base, target, depth+1)
		case kindHardLink:
			resolved := h.findByID(h.root, child.targetID)
			if resolved == nil {
				return nil, ErrLinkDangling
			}
			child = resolved
		}
		cur = child
	}
	return cur, nil
}

// findByID locates an object by ID (hard link resolution).
func (h *File) findByID(o *object, id uint64) *object {
	if o.id == id && o.kind != kindHardLink && o.kind != kindSoftLink {
		return o
	}
	if o.kind == kindGroup {
		for _, c := range o.children {
			if found := h.findByID(c, id); found != nil {
				return found
			}
		}
	}
	return nil
}

func (h *File) checkWritable() error {
	if h.closed {
		return ErrClosed
	}
	if !h.writable {
		return ErrReadOnly
	}
	return nil
}
