package hdf5

import (
	"path"
)

// Group is a handle on a group object.
type Group struct {
	file *File
	obj  *object
	path string
}

// Path returns the group's absolute path within the file.
func (g *Group) Path() string { return g.path }

// File returns the owning file.
func (g *Group) File() *File { return g.file }

// CreateGroup creates a child group (H5Gcreate).
func (g *Group) CreateGroup(name string) (*Group, error) {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if err := g.file.checkWritable(); err != nil {
		return nil, err
	}
	if !validName(name) {
		return nil, ErrBadName
	}
	if _, ok := g.obj.children[name]; ok {
		return nil, ErrExist
	}
	child := newGroup(name, g.file.newID())
	g.obj.children[name] = child
	g.file.dirty = true
	return &Group{file: g.file, obj: child, path: path.Join(g.path, name)}, nil
}

// OpenGroup opens a child group by (possibly nested) path (H5Gopen).
func (g *Group) OpenGroup(p string) (*Group, error) {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if g.file.closed {
		return nil, ErrClosed
	}
	o, err := g.file.resolveObject(g.obj, p, 0)
	if err != nil {
		return nil, err
	}
	if o.kind != kindGroup {
		return nil, ErrNotGroup
	}
	return &Group{file: g.file, obj: o, path: joinPath(g.path, p)}, nil
}

// Members returns the sorted names of the group's children (H5Literate).
func (g *Group) Members() []string {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	return g.obj.childNames()
}

// Exists reports whether a child path resolves.
func (g *Group) Exists(p string) bool {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	_, err := g.file.resolveObject(g.obj, p, 0)
	return err == nil
}

// Delete removes a direct child (group, dataset, datatype, or link). Like
// H5Ldelete it removes the name; hard-linked objects stay reachable via
// other names.
func (g *Group) Delete(name string) error {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if err := g.file.checkWritable(); err != nil {
		return err
	}
	if _, ok := g.obj.children[name]; !ok {
		return ErrNotExist
	}
	delete(g.obj.children, name)
	g.file.dirty = true
	return nil
}

// DatasetOptions selects optional dataset creation properties (the H5P
// property-list analog).
type DatasetOptions struct {
	// Deflate stores raw segments compressed (H5Pset_deflate).
	Deflate bool
}

// CreateDatasetWith creates a child dataset with explicit options.
func (g *Group) CreateDatasetWith(name string, dt Datatype, dims []int, opts DatasetOptions) (*Dataset, error) {
	ds, err := g.CreateDataset(name, dt, dims)
	if err != nil {
		return nil, err
	}
	g.file.mu.Lock()
	ds.obj.deflate = opts.Deflate
	g.file.mu.Unlock()
	return ds, nil
}

// CreateDataset creates a child dataset (H5Dcreate).
func (g *Group) CreateDataset(name string, dt Datatype, dims []int) (*Dataset, error) {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if err := g.file.checkWritable(); err != nil {
		return nil, err
	}
	if !validName(name) {
		return nil, ErrBadName
	}
	if !dt.Valid() {
		return nil, ErrTypeMismatch
	}
	if _, err := elemCount(dims); err != nil {
		return nil, err
	}
	if _, ok := g.obj.children[name]; ok {
		return nil, ErrExist
	}
	ds := newDataset(name, g.file.newID(), dt, dims)
	g.obj.children[name] = ds
	g.file.dirty = true
	return &Dataset{file: g.file, obj: ds, path: path.Join(g.path, name)}, nil
}

// OpenDataset opens a dataset by path (H5Dopen).
func (g *Group) OpenDataset(p string) (*Dataset, error) {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if g.file.closed {
		return nil, ErrClosed
	}
	o, err := g.file.resolveObject(g.obj, p, 0)
	if err != nil {
		return nil, err
	}
	if o.kind != kindDataset {
		return nil, ErrNotDataset
	}
	return &Dataset{file: g.file, obj: o, path: joinPath(g.path, p)}, nil
}

// CommitDatatype stores a named datatype (H5Tcommit).
func (g *Group) CommitDatatype(name string, dt Datatype) (*NamedDatatype, error) {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if err := g.file.checkWritable(); err != nil {
		return nil, err
	}
	if !validName(name) {
		return nil, ErrBadName
	}
	if !dt.Valid() {
		return nil, ErrTypeMismatch
	}
	if _, ok := g.obj.children[name]; ok {
		return nil, ErrExist
	}
	o := &object{kind: kindDatatype, id: g.file.newID(), name: name, dtype: dt,
		attrs: make(map[string]*attribute)}
	g.obj.children[name] = o
	g.file.dirty = true
	return &NamedDatatype{file: g.file, obj: o, path: path.Join(g.path, name)}, nil
}

// OpenDatatype opens a named datatype (H5Topen).
func (g *Group) OpenDatatype(p string) (*NamedDatatype, error) {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if g.file.closed {
		return nil, ErrClosed
	}
	o, err := g.file.resolveObject(g.obj, p, 0)
	if err != nil {
		return nil, err
	}
	if o.kind != kindDatatype {
		return nil, ErrNotDatatype
	}
	return &NamedDatatype{file: g.file, obj: o, path: joinPath(g.path, p)}, nil
}

// CreateSoftLink creates a soft link child pointing at target (H5Lcreate_soft).
func (g *Group) CreateSoftLink(name, target string) error {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if err := g.file.checkWritable(); err != nil {
		return err
	}
	if !validName(name) {
		return ErrBadName
	}
	if _, ok := g.obj.children[name]; ok {
		return ErrExist
	}
	g.obj.children[name] = &object{kind: kindSoftLink, id: g.file.newID(), name: name,
		target: target, attrs: make(map[string]*attribute)}
	g.file.dirty = true
	return nil
}

// CreateHardLink creates a hard link child to the object at target
// (H5Lcreate_hard).
func (g *Group) CreateHardLink(name, target string) error {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	if err := g.file.checkWritable(); err != nil {
		return err
	}
	if !validName(name) {
		return ErrBadName
	}
	if _, ok := g.obj.children[name]; ok {
		return ErrExist
	}
	o, err := g.file.resolveObject(g.obj, target, 0)
	if err != nil {
		return err
	}
	// Hard links alias the object itself (HDF5 object headers are owned by
	// the file, not by any one name); the metadata encoder stores shared
	// objects once and aliases as ID stubs.
	g.obj.children[name] = o
	g.file.dirty = true
	return nil
}

// LinkInfo describes a link child.
type LinkInfo struct {
	Name   string
	Soft   bool
	Target string
}

// Links returns the group's link children.
func (g *Group) Links() []LinkInfo {
	g.file.mu.Lock()
	defer g.file.mu.Unlock()
	var out []LinkInfo
	for _, name := range g.obj.childNames() {
		c := g.obj.children[name]
		switch c.kind {
		case kindSoftLink:
			out = append(out, LinkInfo{Name: name, Soft: true, Target: c.target})
		case kindHardLink:
			out = append(out, LinkInfo{Name: name, Soft: false})
		}
	}
	return out
}

// attrHost exposes the shared attribute API on groups.
func (g *Group) host() *object { return g.obj }
func (g *Group) hfile() *File  { return g.file }
func (g *Group) hpath() string { return g.path }

// NamedDatatype is a handle on a committed datatype.
type NamedDatatype struct {
	file *File
	obj  *object
	path string
}

// Datatype returns the committed type definition (H5Tread analog).
func (t *NamedDatatype) Datatype() Datatype {
	t.file.mu.Lock()
	defer t.file.mu.Unlock()
	return t.obj.dtype
}

// Path returns the named datatype's path.
func (t *NamedDatatype) Path() string { return t.path }

// File returns the owning file.
func (t *NamedDatatype) File() *File { return t.file }

func (t *NamedDatatype) host() *object { return t.obj }
func (t *NamedDatatype) hfile() *File  { return t.file }
func (t *NamedDatatype) hpath() string { return t.path }

func joinPath(base, p string) string {
	if len(p) > 0 && p[0] == '/' {
		return path.Clean(p)
	}
	return path.Join(base, p)
}
