package hdf5

import "github.com/hpc-io/prov-io/internal/simclock"

func newClockForTest() *simclock.Clock       { return simclock.NewClock() }
func defaultCostForTest() simclock.CostModel { return simclock.Default() }
