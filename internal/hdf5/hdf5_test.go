package hdf5

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/hpc-io/prov-io/internal/vfs"
)

func newView() *vfs.View { return vfs.NewStore().NewView() }

func mustCreate(t *testing.T, v *vfs.View, path string) *File {
	t.Helper()
	f, err := Create(v, path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCreateCloseReopen(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/data.h5")
	if _, err := f.Root().CreateGroup("Timestep_0"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close err = %v", err)
	}

	f2, err := Open(v, "/data.h5", true)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if !f2.Root().Exists("Timestep_0") {
		t.Error("group lost across reopen")
	}
}

func TestOpenRejectsNonPH5F(t *testing.T) {
	v := newView()
	v.WriteFile("/plain.txt", []byte("this is not a PH5F file at all........"))
	if _, err := Open(v, "/plain.txt", true); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if IsPH5F(v, "/plain.txt") {
		t.Error("IsPH5F accepted plain file")
	}
	f := mustCreate(t, v, "/real.h5")
	f.Close()
	if !IsPH5F(v, "/real.h5") {
		t.Error("IsPH5F rejected real file")
	}
}

func TestOpenRejectsBadVersion(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	f.Close()
	raw, _ := v.ReadFile("/f.h5")
	binary.LittleEndian.PutUint32(raw[4:8], 99)
	v.WriteFile("/f.h5", raw)
	if _, err := Open(v, "/f.h5", true); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestCorruptMetadataDetected(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	f.Root().CreateGroup("g")
	f.Close()
	raw, _ := v.ReadFile("/f.h5")
	// Truncate the metadata region.
	metaOff := int64(binary.LittleEndian.Uint64(raw[8:16]))
	v.WriteFile("/f.h5", raw[:metaOff+3])
	if _, err := Open(v, "/f.h5", true); err == nil {
		t.Error("corrupt file opened without error")
	}
}

func TestGroupHierarchy(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	root := f.Root()
	g1, err := root.CreateGroup("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g1.CreateGroup("b"); err != nil {
		t.Fatal(err)
	}
	// Nested open by path, absolute and relative.
	if _, err := root.OpenGroup("a/b"); err != nil {
		t.Errorf("relative nested open: %v", err)
	}
	if _, err := g1.OpenGroup("/a/b"); err != nil {
		t.Errorf("absolute open from subgroup: %v", err)
	}
	if _, err := root.CreateGroup("a"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate group err = %v", err)
	}
	if _, err := root.OpenGroup("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing group err = %v", err)
	}
	for _, bad := range []string{"", ".", "..", "a/b"} {
		if _, err := root.CreateGroup(bad); !errors.Is(err, ErrBadName) {
			t.Errorf("CreateGroup(%q) err = %v", bad, err)
		}
	}
	members := root.Members()
	if len(members) != 1 || members[0] != "a" {
		t.Errorf("Members = %v", members)
	}
}

func TestDatasetWriteReadRoundTrip(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, err := f.Root().CreateDataset("x", TypeFloat64, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4*2*8)
	for i := range data {
		data[i] = byte(i)
	}
	if err := ds.Write(data); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read != written")
	}
	f.Close()

	// Survives reopen.
	f2, err := Open(v, "/f.h5", true)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	ds2, err := f2.Root().OpenDataset("x")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ds2.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Error("read after reopen != written")
	}
	if dims := ds2.Dims(); dims[0] != 4 || dims[1] != 2 {
		t.Errorf("dims = %v", dims)
	}
	if ds2.Datatype() != TypeFloat64 {
		t.Errorf("datatype = %v", ds2.Datatype())
	}
}

func TestDatasetShapeValidation(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	ds, _ := f.Root().CreateDataset("x", TypeInt32, []int{4})
	if err := ds.Write(make([]byte, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("short write err = %v", err)
	}
	if _, err := f.Root().CreateDataset("bad", TypeInt32, []int{-1}); !errors.Is(err, ErrShape) {
		t.Errorf("negative dims err = %v", err)
	}
	if _, err := f.Root().CreateDataset("bad2", Datatype{ClassInt, 3}, []int{1}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("invalid datatype err = %v", err)
	}
	if _, err := f.Root().CreateDataset("x", TypeInt32, []int{1}); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate dataset err = %v", err)
	}
}

func TestOverwriteCreatesVersions(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	ds, _ := f.Root().CreateDataset("x", TypeUint8, []int{10})
	base := bytes.Repeat([]byte{1}, 10)
	ds.Write(base)
	// Overwrite middle rows.
	if err := ds.WriteRows(3, 4, bytes.Repeat([]byte{2}, 4)); err != nil {
		t.Fatal(err)
	}
	got, _ := ds.Read()
	want := []byte{1, 1, 1, 2, 2, 2, 2, 1, 1, 1}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if ds.Versions() != 2 {
		t.Errorf("Versions = %d, want 2", ds.Versions())
	}
	if err := ds.WriteRows(8, 5, make([]byte, 5)); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-bounds overwrite err = %v", err)
	}
	if err := ds.WriteRows(0, 2, make([]byte, 5)); !errors.Is(err, ErrShape) {
		t.Errorf("mis-sized overwrite err = %v", err)
	}
}

func TestAppendExtendsDim0(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, _ := f.Root().CreateDataset("x", TypeInt32, []int{2, 3})
	row := make([]byte, 3*4)
	ds.Write(make([]byte, 2*3*4))
	if err := ds.Append(1, row); err != nil {
		t.Fatal(err)
	}
	if dims := ds.Dims(); dims[0] != 3 {
		t.Errorf("dims after append = %v", dims)
	}
	if err := ds.Append(0, nil); !errors.Is(err, ErrShape) {
		t.Errorf("zero-row append err = %v", err)
	}
	if err := ds.Append(2, row); !errors.Is(err, ErrShape) {
		t.Errorf("mis-sized append err = %v", err)
	}
	f.Close()
	f2, _ := Open(v, "/f.h5", true)
	defer f2.Close()
	ds2, _ := f2.Root().OpenDataset("x")
	if dims := ds2.Dims(); dims[0] != 3 {
		t.Errorf("dims after reopen = %v", dims)
	}
	data, err := ds2.Read()
	if err != nil || len(data) != 3*3*4 {
		t.Errorf("read after append: %d bytes, %v", len(data), err)
	}
}

func TestReadRows(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	ds, _ := f.Root().CreateDataset("x", TypeUint8, []int{6})
	ds.Write([]byte{0, 1, 2, 3, 4, 5})
	got, err := ds.ReadRows(2, 3)
	if err != nil || !bytes.Equal(got, []byte{2, 3, 4}) {
		t.Errorf("ReadRows = %v, %v", got, err)
	}
	if _, err := ds.ReadRows(4, 5); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-bounds read err = %v", err)
	}
}

func TestSparseDatasetReadsZeros(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	ds, _ := f.Root().CreateDataset("x", TypeUint8, []int{8})
	// Only write rows 2..4; the rest must read as zero.
	ds.WriteRows(2, 2, []byte{7, 8})
	got, _ := ds.Read()
	want := []byte{0, 0, 7, 8, 0, 0, 0, 0}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestAttributesOnAllHosts(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	g, _ := f.Root().CreateGroup("g")
	ds, _ := g.CreateDataset("d", TypeInt32, []int{1})
	nt, _ := g.CommitDatatype("t", TypeFloat32)

	hosts := []struct {
		name string
		h    AttrHost
	}{{"group", g}, {"dataset", ds}, {"datatype", nt}}
	for _, hc := range hosts {
		t.Run(hc.name, func(t *testing.T) {
			if err := SetStringAttribute(hc.h, "units", "m/s"); err != nil {
				t.Fatal(err)
			}
			if err := SetInt64Attribute(hc.h, "count", 42); err != nil {
				t.Fatal(err)
			}
			if err := SetFloat64Attribute(hc.h, "scale", 0.5); err != nil {
				t.Fatal(err)
			}
			s, err := GetStringAttribute(hc.h, "units")
			if err != nil || s != "m/s" {
				t.Errorf("string attr = %q, %v", s, err)
			}
			i, err := GetInt64Attribute(hc.h, "count")
			if err != nil || i != 42 {
				t.Errorf("int attr = %d, %v", i, err)
			}
			fv, err := GetFloat64Attribute(hc.h, "scale")
			if err != nil || fv != 0.5 {
				t.Errorf("float attr = %g, %v", fv, err)
			}
			names := ListAttributes(hc.h)
			if len(names) != 3 {
				t.Errorf("ListAttributes = %v", names)
			}
		})
	}
	f.Close()

	// Attributes persist.
	f2, _ := Open(v, "/f.h5", true)
	defer f2.Close()
	g2, _ := f2.Root().OpenGroup("g")
	s, err := GetStringAttribute(g2, "units")
	if err != nil || s != "m/s" {
		t.Errorf("persisted attr = %q, %v", s, err)
	}
}

func TestAttributeErrors(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	g := f.Root()
	if _, _, err := ReadAttribute(g, "nope"); !errors.Is(err, ErrAttrNotExist) {
		t.Errorf("missing attr err = %v", err)
	}
	if err := CreateAttribute(g, "bad/name", TypeInt64, []int{1}, make([]byte, 8)); !errors.Is(err, ErrBadName) {
		t.Errorf("bad name err = %v", err)
	}
	if err := CreateAttribute(g, "x", TypeInt64, []int{2}, make([]byte, 8)); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch err = %v", err)
	}
	if err := DeleteAttribute(g, "nope"); !errors.Is(err, ErrAttrNotExist) {
		t.Errorf("delete missing err = %v", err)
	}
	SetInt64Attribute(g, "k", 1)
	if err := DeleteAttribute(g, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := GetInt64Attribute(g, "k"); !errors.Is(err, ErrAttrNotExist) {
		t.Errorf("read after delete err = %v", err)
	}
	// Type-mismatched reads.
	SetStringAttribute(g, "s", "str")
	if _, err := GetInt64Attribute(g, "s"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("int read of string err = %v", err)
	}
	if _, err := GetFloat64Attribute(g, "s"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("float read of string err = %v", err)
	}
	SetInt64Attribute(g, "i", 1)
	if _, err := GetStringAttribute(g, "i"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("string read of int err = %v", err)
	}
}

func TestNamedDatatype(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	if _, err := f.Root().CommitDatatype("particle_id", TypeUint64); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f2, _ := Open(v, "/f.h5", true)
	defer f2.Close()
	nt, err := f2.Root().OpenDatatype("particle_id")
	if err != nil {
		t.Fatal(err)
	}
	if nt.Datatype() != TypeUint64 {
		t.Errorf("datatype = %v", nt.Datatype())
	}
	if _, err := f2.Root().OpenDatatype("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing datatype err = %v", err)
	}
	if _, err := f2.Root().OpenGroup("particle_id"); !errors.Is(err, ErrNotGroup) {
		t.Errorf("open datatype as group err = %v", err)
	}
}

func TestSoftLink(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	g, _ := f.Root().CreateGroup("data")
	ds, _ := g.CreateDataset("v1", TypeUint8, []int{3})
	ds.Write([]byte{1, 2, 3})
	if err := f.Root().CreateSoftLink("latest", "/data/v1"); err != nil {
		t.Fatal(err)
	}
	via, err := f.Root().OpenDataset("latest")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := via.Read()
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("read via link = %v", got)
	}
	links := f.Root().Links()
	if len(links) != 1 || !links[0].Soft || links[0].Target != "/data/v1" {
		t.Errorf("Links = %+v", links)
	}
	// Dangling link.
	f.Root().CreateSoftLink("broken", "/nope")
	if _, err := f.Root().OpenDataset("broken"); !errors.Is(err, ErrNotExist) {
		t.Errorf("dangling link err = %v", err)
	}
}

func TestHardLink(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, _ := f.Root().CreateDataset("orig", TypeUint8, []int{2})
	ds.Write([]byte{9, 9})
	if err := f.Root().CreateHardLink("alias", "/orig"); err != nil {
		t.Fatal(err)
	}
	// Delete the original name; alias still resolves (hard link semantics).
	f.Root().Delete("orig")
	via, err := f.Root().OpenDataset("alias")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := via.Read()
	if !bytes.Equal(got, []byte{9, 9}) {
		t.Errorf("read via hard link = %v", got)
	}
	f.Close()
	// Hard link survives reopen: the aliased object is encoded under the
	// surviving name.
	f2, _ := Open(v, "/f.h5", true)
	defer f2.Close()
	via2, err := f2.Root().OpenDataset("alias")
	if err != nil {
		t.Fatalf("hard link lost across reopen: %v", err)
	}
	got2, _ := via2.Read()
	if !bytes.Equal(got2, []byte{9, 9}) {
		t.Errorf("read via hard link after reopen = %v", got2)
	}
}

func TestHardLinkSharedAcrossReopen(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, _ := f.Root().CreateDataset("a", TypeUint8, []int{1})
	ds.Write([]byte{1})
	f.Root().CreateHardLink("b", "/a")
	f.Close()

	f2, _ := Open(v, "/f.h5", false)
	dsA, _ := f2.Root().OpenDataset("a")
	dsB, err := f2.Root().OpenDataset("b")
	if err != nil {
		t.Fatal(err)
	}
	// Write through one name, observe through the other: still one object.
	if err := dsA.Write([]byte{7}); err != nil {
		t.Fatal(err)
	}
	got, _ := dsB.Read()
	if !bytes.Equal(got, []byte{7}) {
		t.Errorf("aliases diverged after reopen: %v", got)
	}
	f2.Close()
}

func TestSoftLinkLoopTerminates(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	f.Root().CreateSoftLink("a", "/b")
	f.Root().CreateSoftLink("b", "/a")
	if _, err := f.Root().OpenGroup("a"); err == nil {
		t.Error("symlink loop resolved without error")
	}
}

func TestReadOnlyEnforced(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, _ := f.Root().CreateDataset("x", TypeUint8, []int{1})
	ds.Write([]byte{1})
	f.Close()

	f2, _ := Open(v, "/f.h5", true)
	defer f2.Close()
	if _, err := f2.Root().CreateGroup("g"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("create group on RO file err = %v", err)
	}
	ds2, _ := f2.Root().OpenDataset("x")
	if err := ds2.Write([]byte{2}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("write on RO file err = %v", err)
	}
	if err := SetInt64Attribute(f2.Root(), "a", 1); !errors.Is(err, ErrReadOnly) {
		t.Errorf("attr on RO file err = %v", err)
	}
}

func TestFlushMakesDataVisibleToReaders(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, _ := f.Root().CreateDataset("x", TypeUint8, []int{3})
	ds.Write([]byte{5, 6, 7})
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Another handle opened read-only mid-run sees the flushed state.
	f2, err := Open(v, "/f.h5", true)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := f2.Root().OpenDataset("x")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ds2.Read()
	if !bytes.Equal(got, []byte{5, 6, 7}) {
		t.Errorf("reader sees %v", got)
	}
	f2.Close()
	f.Close()
}

func TestMultipleFlushesLogStructured(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, _ := f.Root().CreateDataset("x", TypeUint8, []int{1})
	for i := 0; i < 5; i++ {
		ds.Write([]byte{byte(i)})
		if err := f.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	f2, _ := Open(v, "/f.h5", true)
	defer f2.Close()
	ds2, _ := f2.Root().OpenDataset("x")
	got, _ := ds2.Read()
	if !bytes.Equal(got, []byte{4}) {
		t.Errorf("latest version = %v, want [4]", got)
	}
	if ds2.Versions() != 5 {
		t.Errorf("versions = %d, want 5", ds2.Versions())
	}
}

func TestReopenAppendAfterClose(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, _ := f.Root().CreateDataset("x", TypeUint8, []int{2})
	ds.Write([]byte{1, 2})
	f.Close()

	f2, err := Open(v, "/f.h5", false)
	if err != nil {
		t.Fatal(err)
	}
	ds2, _ := f2.Root().OpenDataset("x")
	if err := ds2.Append(2, []byte{3, 4}); err != nil {
		t.Fatal(err)
	}
	f2.Close()

	f3, _ := Open(v, "/f.h5", true)
	defer f3.Close()
	ds3, _ := f3.Root().OpenDataset("x")
	got, _ := ds3.Read()
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("after reopen+append = %v", got)
	}
}

func TestDatatypeValidity(t *testing.T) {
	valid := []Datatype{TypeInt8, TypeInt32, TypeInt64, TypeUint8, TypeUint32,
		TypeUint64, TypeFloat32, TypeFloat64, TypeString(16)}
	for _, dt := range valid {
		if !dt.Valid() {
			t.Errorf("%v should be valid", dt)
		}
	}
	invalid := []Datatype{{}, {ClassInt, 3}, {ClassFloat, 2}, {ClassString, 0}, {TypeClass(9), 4}}
	for _, dt := range invalid {
		if dt.Valid() {
			t.Errorf("%v should be invalid", dt)
		}
	}
	if TypeInt64.String() != "int64" || TypeString(8).String() != "string8" ||
		TypeFloat32.String() != "float32" || TypeUint8.String() != "uint8" {
		t.Error("Datatype.String rendering wrong")
	}
}

func TestMetadataEncodeDecodeProperty(t *testing.T) {
	// Property: any tree built from a bounded script round-trips through
	// the binary metadata encoding.
	f := func(script []uint8) bool {
		root := newGroup("/", 1)
		id := uint64(2)
		cur := root
		for _, op := range script {
			switch op % 4 {
			case 0:
				name := fmt.Sprintf("g%d", id)
				child := newGroup(name, id)
				cur.children[name] = child
				cur = child
			case 1:
				name := fmt.Sprintf("d%d", id)
				ds := newDataset(name, id, TypeFloat64, []int{int(op%7) + 1, 2})
				ds.segments = append(ds.segments, segment{rowStart: 0, rowCount: int64(op % 7), offset: 64, length: 128})
				cur.children[name] = ds
			case 2:
				cur.attrs[fmt.Sprintf("a%d", id)] = &attribute{
					name: fmt.Sprintf("a%d", id), dtype: TypeUint8,
					dims: []int{int(op%3) + 1}, value: make([]byte, int(op%3)+1),
				}
			case 3:
				cur = root
			}
			id++
		}
		enc := encodeMetadata(root)
		dec, err := decodeMetadata(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(encodeMetadata(dec), enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	root := newGroup("/", 1)
	g := newGroup("g", 2)
	root.children["g"] = g
	ds := newDataset("d", 3, TypeInt32, []int{4})
	g.children["d"] = ds
	enc := encodeMetadata(root)
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := decodeMetadata(enc[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestChargedIOAdvancesClock(t *testing.T) {
	store := vfs.NewStore()
	clock := newClockForTest()
	v := store.NewChargedView(clock, defaultCostForTest())
	f, err := Create(v, "/f.h5")
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := f.Root().CreateDataset("x", TypeFloat64, []int{1 << 12})
	before := clock.Now()
	ds.Write(make([]byte, (1<<12)*8))
	if clock.Now() <= before {
		t.Error("dataset write charged no virtual time")
	}
	f.Close()
}

func TestDeflateDatasetRoundTrip(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	ds, err := f.Root().CreateDatasetWith("z", TypeUint8, []int{1 << 12}, DatasetOptions{Deflate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Deflate() {
		t.Fatal("deflate flag not set")
	}
	// Highly compressible payload.
	data := bytes.Repeat([]byte{7}, 1<<12)
	if err := ds.Write(data); err != nil {
		t.Fatal(err)
	}
	if ds.StoredBytes() >= int64(len(data))/4 {
		t.Errorf("deflate ineffective: stored %d of %d raw bytes", ds.StoredBytes(), len(data))
	}
	got, err := ds.Read()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back mismatch: %v", err)
	}
	// Partial reads through the filter.
	part, err := ds.ReadRows(100, 50)
	if err != nil || !bytes.Equal(part, data[100:150]) {
		t.Fatalf("partial filtered read: %v", err)
	}
	f.Close()

	// Flag and data survive reopen.
	f2, err := Open(v, "/f.h5", true)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	ds2, err := f2.Root().OpenDataset("z")
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Deflate() {
		t.Error("deflate flag lost across reopen")
	}
	got2, err := ds2.Read()
	if err != nil || !bytes.Equal(got2, data) {
		t.Fatalf("read after reopen: %v", err)
	}
}

func TestDeflateOverwriteAndAppend(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	ds, _ := f.Root().CreateDatasetWith("z", TypeUint8, []int{8}, DatasetOptions{Deflate: true})
	ds.Write(bytes.Repeat([]byte{1}, 8))
	if err := ds.WriteRows(2, 3, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Append(2, []byte{5, 5}); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Read()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 1, 9, 9, 9, 1, 1, 1, 5, 5}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDeflateMixedWithPlainDataset(t *testing.T) {
	v := newView()
	f := mustCreate(t, v, "/f.h5")
	defer f.Close()
	plain, _ := f.Root().CreateDataset("p", TypeUint8, []int{64})
	comp, _ := f.Root().CreateDatasetWith("c", TypeUint8, []int{64}, DatasetOptions{Deflate: true})
	payload := bytes.Repeat([]byte{3}, 64)
	plain.Write(payload)
	comp.Write(payload)
	if plain.Deflate() {
		t.Error("plain dataset reports deflate")
	}
	if comp.StoredBytes() >= plain.StoredBytes() {
		t.Errorf("compressed (%d) not smaller than plain (%d)", comp.StoredBytes(), plain.StoredBytes())
	}
	a, _ := plain.Read()
	b, _ := comp.Read()
	if !bytes.Equal(a, b) {
		t.Error("filtered and plain contents diverge")
	}
}
