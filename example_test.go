package provio_test

import (
	"fmt"
	"strings"

	provio "github.com/hpc-io/prov-io"
)

// Example demonstrates the minimal end-to-end flow: track a hierarchical
// write transparently through the VOL connector stack, flush the provenance
// store, and query who produced the file.
func Example() {
	fs := provio.NewMemStore()
	view := fs.NewView()
	store, _ := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)

	tracker := provio.NewTracker(provio.DefaultConfig(), store, 0)
	user := tracker.RegisterUser("alice")
	prog := tracker.RegisterProgram("simulate-a1", user)
	conn := provio.NewProvConnector(provio.NewNativeConnector(view), tracker,
		provio.Context{User: user, Program: prog}, nil)

	f, _ := conn.FileCreate("/run.h5")
	ds, _ := conn.DatasetCreate(f.Root(), "x", provio.TypeFloat64, []int{4})
	_ = conn.DatasetWrite(ds, make([]byte, 32))
	_ = conn.FileClose(f)
	_ = tracker.Close()

	g, _ := store.Merge()
	res, _ := provio.Query(g, `
		SELECT ?p WHERE {
			?f provio:name "/run.h5" ; prov:wasAttributedTo ?prog .
			?prog provio:name ?p .
		}`)
	fmt.Println("produced by:", res.Rows[0]["p"].Value)
	// Output: produced by: simulate-a1
}

// ExampleQuery shows a transitive lineage query with a property path.
func ExampleQuery() {
	g := provio.NewGraph()
	derived := provio.IRI("http://www.w3.org/ns/prov#wasDerivedFrom")
	g.Add(provio.Triple{S: provio.IRI("https://x/c"), P: derived, O: provio.IRI("https://x/b")})
	g.Add(provio.Triple{S: provio.IRI("https://x/b"), P: derived, O: provio.IRI("https://x/a")})

	res, _ := provio.Query(g, `SELECT ?anc WHERE { <https://x/c> prov:wasDerivedFrom+ ?anc . }`)
	for _, row := range res.Rows {
		fmt.Println(row["anc"].Value)
	}
	// Output:
	// https://x/a
	// https://x/b
}

// ExampleLoadConfig shows configuration-file driven class selection — the
// transparency mechanism that lets users pick provenance features without
// touching workflow source.
func ExampleLoadConfig() {
	cfg, _ := provio.LoadConfig(strings.NewReader(`
# track file-granularity lineage with durations
track    = File, Create, Open, Read, Write, Fsync, Rename
duration = on
`))
	fmt.Println("file tracked:", cfg.Enabled(provio.ModelFile))
	fmt.Println("dataset tracked:", cfg.Enabled(provio.ModelDataset))
	fmt.Println("durations:", cfg.Duration)
	// Output:
	// file tracked: true
	// dataset tracked: false
	// durations: true
}
