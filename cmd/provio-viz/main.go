// Command provio-viz renders a provenance store as Graphviz DOT, optionally
// highlighting the backward lineage of one data product in blue (the
// paper's Figure 9).
//
// Usage:
//
//	provio-viz -store ./prov -o graph.dot
//	provio-viz -store ./prov -product /das/products/x.h5 -o lineage.dot
//	dot -Tpdf lineage.dot -o lineage.pdf
package main

import (
	"flag"
	"fmt"
	"os"

	provio "github.com/hpc-io/prov-io"
	"github.com/hpc-io/prov-io/internal/cli"
)

func main() {
	storeSpec := flag.String("store", "", cli.StoreUsage+" (required)")
	formatFlag := flag.String("format", "auto", cli.FormatUsage)
	out := flag.String("o", "", "output DOT file (default stdout)")
	product := flag.String("product", "", "file path of a data product whose lineage to highlight")
	title := flag.String("title", "PROV-IO provenance", "graph title")
	flag.Parse()

	store, err := cli.OpenStore(*storeSpec, *formatFlag)
	if err != nil {
		fatalf("open store: %v", err)
	}
	g, err := store.Merge()
	if err != nil {
		fatalf("merge: %v", err)
	}

	opts := provio.VizOptions{Title: *title}
	if *product != "" {
		node := provio.IRI(provio.NodeIRI(provio.ModelFile, *product))
		opts.Highlight = provio.LineageHighlight(g, node)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := provio.WriteDOT(w, g, opts); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provio-viz: "+format+"\n", args...)
	os.Exit(1)
}
