// Command provio-verify audits the integrity of a provenance store: every
// file must decode through its codec (frames, CRCs), every seal must match
// its file's bytes, and each process's files must form one continuous hash
// chain (DESIGN.md "Integrity & fault injection").
//
// Usage:
//
//	provio-verify -store ./prov [-strict] [-q] \
//	    [-write-heads heads.txt] [-heads heads.txt]
//	provio-verify -selftest
//
// -write-heads records each process's chain head (the SHA-256 of its newest
// authenticated file) after a run; -heads re-verifies against a recorded
// anchor, which additionally catches deletion of a chain's newest files and
// whole processes spliced in or removed — manipulations that are locally
// self-consistent. -strict additionally flags files carrying no seal (stores
// written before the integrity layer are otherwise tolerated). -selftest
// runs the deterministic crash-consistency sweep for every store format and
// backend kind.
//
// -store accepts a directory or any store spec (dir:/path, file:/run.pvs,
// mount:hot=...,cold=...), so an archive or a mounted hot/cold store audits
// with the same exit-code contract as a plain directory.
//
// The exit code classifies the worst finding:
//
//	0  clean
//	1  operational error (unreadable store, bad flags, failed selftest)
//	2  tampered   — content contradicts a seal or the chain
//	3  truncated  — a file is a strict prefix of its sealed form
//	4  missing    — chain or sidecar references a file that is gone
//	5  orphaned   — a file nothing authenticates (includes -strict unsealed)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	provio "github.com/hpc-io/prov-io"
	"github.com/hpc-io/prov-io/internal/cli"
)

// Exit codes, keyed by the worst defect kind found.
const (
	exitClean       = 0
	exitOperational = 1
	exitTampered    = 2
	exitTruncated   = 3
	exitMissing     = 4
	exitOrphaned    = 5
)

func exitCode(worst provio.DefectKind) int {
	switch worst {
	case provio.DefectTampered:
		return exitTampered
	case provio.DefectTruncated:
		return exitTruncated
	case provio.DefectMissing:
		return exitMissing
	case provio.DefectOrphaned:
		return exitOrphaned
	}
	return exitClean
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("provio-verify", flag.ContinueOnError)
	fl.SetOutput(stderr)
	storeSpec := fl.String("store", "", cli.StoreUsage+" (required)")
	strict := fl.Bool("strict", false, "treat files without an integrity seal as orphaned")
	quiet := fl.Bool("q", false, "print defects only")
	writeHeads := fl.String("write-heads", "", "record the per-process chain heads to this file")
	headsPath := fl.String("heads", "", "verify against chain heads recorded by -write-heads")
	selftest := fl.Bool("selftest", false, "run the deterministic crash-consistency sweep and exit")
	if err := fl.Parse(args); err != nil {
		return exitOperational
	}

	if *selftest {
		return runSelftest(stdout, stderr)
	}
	store, err := cli.OpenStore(*storeSpec, "auto")
	if err != nil {
		fmt.Fprintf(stderr, "provio-verify: open store: %v\n", err)
		return exitOperational
	}

	var rep *provio.VerifyReport
	if *headsPath != "" {
		data, err := os.ReadFile(*headsPath)
		if err != nil {
			fmt.Fprintf(stderr, "provio-verify: %v\n", err)
			return exitOperational
		}
		heads, err := provio.ParseHeads(data)
		if err != nil {
			fmt.Fprintf(stderr, "provio-verify: %v\n", err)
			return exitOperational
		}
		rep, err = store.VerifyAgainst(heads)
		if err != nil {
			fmt.Fprintf(stderr, "provio-verify: %v\n", err)
			return exitOperational
		}
	} else {
		rep, err = store.Verify()
		if err != nil {
			fmt.Fprintf(stderr, "provio-verify: %v\n", err)
			return exitOperational
		}
	}
	if *strict {
		for _, name := range rep.Unsealed {
			rep.Defects = append(rep.Defects, provio.Defect{
				Name: name, Kind: provio.DefectOrphaned,
				Detail: "file carries no integrity seal (strict mode)",
			})
		}
	}
	if *writeHeads != "" {
		if err := os.WriteFile(*writeHeads, rep.FormatHeads(), 0o644); err != nil {
			fmt.Fprintf(stderr, "provio-verify: %v\n", err)
			return exitOperational
		}
	}

	if !*quiet {
		fmt.Fprintf(stdout, "%s: %d processes, %d files (%d sealed, %d segments, %d packs) [backend: %s]\n",
			rep.Dir, rep.Processes, rep.Files, rep.Sealed, rep.Segments, rep.Packs,
			provio.CapsString(store.Backend().Caps()))
		if len(rep.Unsealed) > 0 && !*strict {
			fmt.Fprintf(stdout, "note: %d files carry no seal (pre-integrity store; -strict flags them)\n",
				len(rep.Unsealed))
		}
	}
	for _, d := range rep.Defects {
		fmt.Fprintln(stdout, d)
	}
	if len(rep.Defects) == 0 {
		if !*quiet {
			fmt.Fprintln(stdout, "clean")
		}
		return exitClean
	}
	return exitCode(rep.Worst())
}

func runSelftest(stdout, stderr io.Writer) int {
	// Every store format over the fault-injecting VFS backend, then the
	// binary format over each real backend kind (the store logic under test
	// is format × backend; the full cross product adds time, not coverage).
	cases := []provio.CrashSweepConfig{
		{Format: provio.FormatTurtle},
		{Format: provio.FormatNTriples},
		{Format: provio.FormatBinary},
		{Format: provio.FormatBinary, Backend: "mem"},
		{Format: provio.FormatBinary, Backend: "file"},
		{Format: provio.FormatBinary, Backend: "mount"},
	}
	fail := false
	for _, cfg := range cases {
		cfg.Seed = 1
		cfg.Torn = true
		rep, err := provio.RunCrashSweep(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "provio-verify: selftest %v: %v\n", cfg.Format, err)
			return exitOperational
		}
		backend := cfg.Backend
		if backend == "" {
			backend = "vfs"
		}
		fmt.Fprintf(stdout, "%s %v %s\n", backend, cfg.Format, rep)
		for _, v := range rep.Violations {
			fmt.Fprintf(stderr, "provio-verify: %s\n", v)
			fail = true
		}
	}
	if fail {
		return exitOperational
	}
	return exitClean
}
