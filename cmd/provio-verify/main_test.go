package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	provio "github.com/hpc-io/prov-io"
)

// buildStore writes a small two-run history (sealed canonical + sealed delta
// segments) into dir with the real OS backend, as a production run would.
func buildStore(t *testing.T, dir string, format provio.Format) {
	t.Helper()
	store, err := provio.NewStore(provio.OSBackend{}, dir, format)
	if err != nil {
		t.Fatal(err)
	}
	tr := provio.NewTracker(provio.DefaultConfig(), store, 0)
	user := tr.RegisterUser("alice")
	tr.RegisterProgram("verify.exe", user)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := provio.DefaultConfig()
	cfg.Mode = provio.ModePeriodic
	cfg.FlushEvery = 1
	tr = provio.NewTracker(cfg, store, 0)
	for i := 0; i < 3; i++ {
		tr.TrackIO(provio.ModelWrite, "H5Dwrite", provio.Term{}, provio.Term{},
			time.Duration(i)*time.Millisecond, 0)
	}
	if err := tr.Drain(); err != nil {
		t.Fatal(err)
	}
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// segments returns the store's delta segment file names, sorted.
func segments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".seg") && !strings.HasSuffix(e.Name(), ".sum") {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs
}

func TestExitCodes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prov")
	buildStore(t, dir, provio.FormatBinary)

	code, out, _ := runCLI(t, "-store", dir)
	if code != exitClean || !strings.Contains(out, "clean") {
		t.Fatalf("clean store: code %d, output %q", code, out)
	}

	// Tampered: flip one byte mid-file.
	segs := segments(t, dir)
	victim := filepath.Join(dir, segs[1])
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), data...)
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, _ := runCLI(t, "-store", dir); code != exitTampered {
		t.Fatalf("tampered store: code %d, output %q", code, out)
	}

	// Truncated: cut the same file short.
	if err := os.WriteFile(victim, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, _ := runCLI(t, "-store", dir); code != exitTruncated {
		t.Fatalf("truncated store: code %d, output %q", code, out)
	}

	// Missing: delete a middle segment outright.
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if code, out, _ := runCLI(t, "-store", dir); code != exitMissing {
		t.Fatalf("store with deleted segment: code %d, output %q", code, out)
	}
}

func TestHeadsAnchoring(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prov")
	buildStore(t, dir, provio.FormatTurtle)
	heads := filepath.Join(t.TempDir(), "heads.txt")

	if code, _, errb := runCLI(t, "-store", dir, "-q", "-write-heads", heads); code != exitClean {
		t.Fatalf("write-heads: code %d, stderr %q", code, errb)
	}
	if code, _, _ := runCLI(t, "-store", dir, "-heads", heads); code != exitClean {
		t.Fatal("clean store failed heads-anchored verification")
	}

	// Deleting the chain's tail (segment + sidecar) is locally invisible but
	// must fail against the recorded heads.
	segs := segments(t, dir)
	tail := segs[len(segs)-1]
	for _, n := range []string{tail + ".sum", tail} {
		if err := os.Remove(filepath.Join(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
	if code, _, _ := runCLI(t, "-store", dir); code != exitClean {
		t.Fatal("tail deletion should be locally invisible (this guards the test's premise)")
	}
	if code, out, _ := runCLI(t, "-store", dir, "-heads", heads); code != exitTampered {
		t.Fatalf("tail deletion against heads: code %d, output %q", code, out)
	}
}

func TestStrictFlagsUnsealed(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prov")
	buildStore(t, dir, provio.FormatNTriples)

	// Deleting a mid-chain sidecar demotes its file to unsealed: tolerated by
	// default, orphaned under -strict.
	segs := segments(t, dir)
	if err := os.Remove(filepath.Join(dir, segs[0]+".sum")); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "-store", dir); code != exitClean {
		t.Fatal("unsealed file must be tolerated without -strict")
	}
	if code, out, _ := runCLI(t, "-store", dir, "-strict"); code != exitOrphaned {
		t.Fatalf("-strict: code %d, output %q", code, out)
	}
}

func TestOperationalErrors(t *testing.T) {
	if code, _, errb := runCLI(t); code != exitOperational || !strings.Contains(errb, "-store is required") {
		t.Fatalf("missing -store: code %d, stderr %q", code, errb)
	}
	if code, _, _ := runCLI(t, "-store", "x", "-heads", "/does/not/exist"); code != exitOperational {
		t.Fatal("unreadable heads file must be an operational error")
	}
}

func TestSelftest(t *testing.T) {
	code, out, errb := runCLI(t, "-selftest")
	if code != exitClean {
		t.Fatalf("selftest: code %d, stderr %q", code, errb)
	}
	if strings.Count(out, "crash sweep:") != 6 {
		t.Fatalf("selftest output missing per-case reports: %q", out)
	}
	for _, want := range []string{"vfs ttl", "vfs nt", "vfs pbs", "mem pbs", "file pbs", "mount pbs"} {
		if !strings.Contains(out, want+" crash sweep:") {
			t.Fatalf("selftest output missing %q sweep: %q", want, out)
		}
	}
}
