// Command provio-merge unifies the per-process sub-graph files of a
// provenance store into a single provenance graph (paper §5: sub-graphs are
// "parsed and merged into a complete provenance graph" after the workflow;
// GUIDs make the merge duplication-free). Pending delta segments left by
// the periodic flush pipeline are merged in as well.
//
// Usage:
//
//	provio-merge -store ./prov [-format auto|nt|ttl|pbs] [-parallel N] [-compact]
//
// Reading auto-detects each file's codec from its magic bytes, so stores
// mixing .nt, .ttl, and .pbs files merge correctly regardless of -format;
// the flag selects what gets written (the merged output, and — with
// -compact — the rewritten canonical files, which is how a text store is
// migrated to the binary format).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	storeDir := flag.String("store", "", "provenance store directory (required)")
	formatFlag := flag.String("format", "auto",
		"write format: auto | nt | ttl | pbs (auto keeps the store's existing format)")
	ntriples := flag.Bool("ntriples", false,
		"deprecated alias for -format=nt")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"parse worker pool size for the merge (1 = sequential)")
	compact := flag.Bool("compact", false,
		"fold leftover delta segments into canonical files before merging (crash recovery)")
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "provio-merge: -store is required")
		os.Exit(1)
	}
	if *ntriples {
		fmt.Fprintln(os.Stderr, "provio-merge: -ntriples is deprecated, use -format=nt")
		if *formatFlag == "auto" {
			*formatFlag = "nt"
		}
	}
	format, err := provio.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: %v\n", err)
		os.Exit(1)
	}
	store, err := provio.NewStore(provio.OSBackend{}, *storeDir, format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: open store: %v\n", err)
		os.Exit(1)
	}
	if *compact {
		if err := store.Compact(); err != nil {
			fmt.Fprintf(os.Stderr, "provio-merge: compact: %v\n", err)
			os.Exit(1)
		}
	}
	g, err := store.WriteMergedParallel(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: %v\n", err)
		os.Exit(1)
	}
	total, err := store.TotalBytes()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d triples (%d distinct subjects) from %s (%d bytes of sub-graphs, %d parse workers)\n",
		g.Len(), len(g.Subjects()), *storeDir, total, *parallel)
}
