// Command provio-merge unifies the per-process sub-graph files of a
// provenance store into a single provenance graph (paper §5: sub-graphs are
// "parsed and merged into a complete provenance graph" after the workflow;
// GUIDs make the merge duplication-free). Pending delta segments left by
// the periodic flush pipeline are merged in as well.
//
// Usage:
//
//	provio-merge -store ./prov [-parallel N] [-compact]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	storeDir := flag.String("store", "", "provenance store directory (required)")
	ntriples := flag.Bool("ntriples", false, "store uses N-Triples (.nt) files")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"parse worker pool size for the merge (1 = sequential)")
	compact := flag.Bool("compact", false,
		"fold leftover delta segments into canonical files before merging (crash recovery)")
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "provio-merge: -store is required")
		os.Exit(1)
	}
	format := provio.FormatTurtle
	if *ntriples {
		format = provio.FormatNTriples
	}
	store, err := provio.NewStore(provio.OSBackend{}, *storeDir, format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: open store: %v\n", err)
		os.Exit(1)
	}
	if *compact {
		if err := store.Compact(); err != nil {
			fmt.Fprintf(os.Stderr, "provio-merge: compact: %v\n", err)
			os.Exit(1)
		}
	}
	g, err := store.WriteMergedParallel(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: %v\n", err)
		os.Exit(1)
	}
	total, err := store.TotalBytes()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d triples (%d distinct subjects) from %s (%d bytes of sub-graphs, %d parse workers)\n",
		g.Len(), len(g.Subjects()), *storeDir, total, *parallel)
}
