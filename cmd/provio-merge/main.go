// Command provio-merge unifies the per-process sub-graph files of a
// provenance store into a single provenance graph (paper §5: sub-graphs are
// "parsed and merged into a complete provenance graph" after the workflow;
// GUIDs make the merge duplication-free). Pending delta segments left by
// the periodic flush pipeline are merged in as well.
//
// Usage:
//
//	provio-merge -store ./prov [-format auto|nt|ttl|pbs] [-parallel N] [-compact]
//	provio-merge -store ./prov -compact -level 1
//
// Reading auto-detects each file's codec from its magic bytes, so stores
// mixing .nt, .ttl, and .pbs files merge correctly regardless of -format;
// the flag selects what gets written (the merged output, and — with
// -compact — the rewritten canonical files, which is how a text store is
// migrated to the binary format).
//
// -store accepts a directory or any store spec (dir:/path, file:/run.pvs,
// mount:hot=...,cold=...). On a mounted store, -compact additionally
// re-homes files onto their routed tiers — provio-merge -compact against
// mount:hot=dir:/old,cold=file:/new.pvs migrates a directory store into a
// single-file archive. Archive-backed stores are vacuumed after -compact so
// the container sheds superseded journal frames.
//
// -compact -level N performs LEVELED compaction instead: loose delta
// segments (and packs below level N) are folded verbatim into one level-N
// pack container whose header carries pushdown statistics, leaving canonical
// files and hash chains untouched — provio-verify against heads recorded
// before the compaction still passes. Queries then skip packs and members
// whose statistics rule them out (see provio-query -plan).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	provio "github.com/hpc-io/prov-io"
	"github.com/hpc-io/prov-io/internal/cli"
)

func main() {
	storeSpec := flag.String("store", "", cli.StoreUsage+" (required)")
	formatFlag := flag.String("format", "auto",
		"write format: auto | nt | ttl | pbs (auto keeps the store's existing format)")
	ntriples := flag.Bool("ntriples", false,
		"deprecated alias for -format=nt")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"parse worker pool size for the merge (1 = sequential)")
	compact := flag.Bool("compact", false,
		"fold leftover delta segments into canonical files before merging (crash recovery)")
	level := flag.Int("level", 0,
		"with -compact: fold delta segments into a level-N pack (leveled compaction) instead of canonical files")
	flag.Parse()

	if *ntriples {
		fmt.Fprintln(os.Stderr, "provio-merge: -ntriples is deprecated, use -format=nt")
		if *formatFlag == "auto" {
			*formatFlag = "nt"
		}
	}
	store, err := cli.OpenStore(*storeSpec, *formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: open store: %v\n", err)
		os.Exit(1)
	}
	if *level > 0 {
		if !*compact {
			fmt.Fprintln(os.Stderr, "provio-merge: -level requires -compact")
			os.Exit(2)
		}
		name, err := store.PackSegments(*level)
		if err != nil {
			if errors.Is(err, provio.ErrNothingToPack) {
				fmt.Println("nothing to pack: no loose segments or lower-level packs")
				return
			}
			fmt.Fprintf(os.Stderr, "provio-merge: pack: %v\n", err)
			os.Exit(1)
		}
		levels, err := store.Levels()
		if err != nil {
			fmt.Fprintf(os.Stderr, "provio-merge: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("packed segments into %s (level %d)\n", name, *level)
		for _, li := range levels {
			fmt.Printf("  L%d: %d file(s), %d unit(s), %d bytes\n", li.Level, li.Files, li.Units, li.Bytes)
		}
		return
	}
	if *compact {
		if err := store.Compact(); err != nil {
			fmt.Fprintf(os.Stderr, "provio-merge: compact: %v\n", err)
			os.Exit(1)
		}
		// An archive-backed store accumulates superseded journal frames as
		// Compact rewrites files; reclaim them while we are at it.
		for b := any(store.Backend()); b != nil; {
			if v, ok := b.(interface{ Vacuum() error }); ok {
				if err := v.Vacuum(); err != nil {
					fmt.Fprintf(os.Stderr, "provio-merge: vacuum: %v\n", err)
					os.Exit(1)
				}
				break
			}
			in, ok := b.(interface{ Inner() any })
			if !ok {
				break
			}
			b = in.Inner()
		}
	}
	g, err := store.WriteMergedParallel(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: %v\n", err)
		os.Exit(1)
	}
	total, err := store.TotalBytes()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-merge: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d triples (%d distinct subjects) from %s (%d bytes of sub-graphs, %d parse workers)\n",
		g.Len(), len(g.Subjects()), *storeSpec, total, *parallel)
}
