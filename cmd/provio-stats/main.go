// Command provio-stats derives I/O statistics from a provenance store — the
// Darshan-style view of the paper's H5bench use case, answered entirely from
// the provenance: operation counts per API, accumulated time per API
// (bottleneck analysis, when the store was collected with duration
// tracking), and the hottest data objects.
//
// Usage:
//
//	provio-stats -store ./prov
//
// The report opens with the store's physical layout: per-level file/unit/byte
// counts (L0 = loose flush segments, L1+ = compacted packs) and the scan line
// of the merge that fed the statistics (segments decoded vs skipped).
//
// -lazy feeds the statistics through an out-of-core view instead of an eager
// merge: units are decoded through a cache bounded by -cache-bytes (0 =
// unbounded), and each layout line gains the view's decoded/resident byte
// breakdown — the sizing input for picking a provio-query -cache-bytes
// budget. The scan line then also carries the cache's hit ratio.
package main

import (
	"flag"
	"fmt"
	"os"

	provio "github.com/hpc-io/prov-io"
	"github.com/hpc-io/prov-io/internal/cli"
	"github.com/hpc-io/prov-io/internal/stats"
)

func main() {
	storeSpec := flag.String("store", "", cli.StoreUsage+" (required)")
	formatFlag := flag.String("format", "auto", cli.FormatUsage)
	lazy := flag.Bool("lazy", false, "derive statistics through an out-of-core lazy view")
	cacheBytes := flag.Int64("cache-bytes", 0, "decoded-unit cache budget in bytes for -lazy (0 = unbounded)")
	flag.Parse()
	store, err := cli.OpenStore(*storeSpec, *formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	levels, err := store.Levels()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}

	var (
		g         *provio.Graph
		scan      *provio.ScanStats
		residency map[int]provio.LevelResidency
	)
	if *lazy {
		view, verr := store.OpenLazy(provio.CacheConfig{MaxBytes: *cacheBytes})
		if verr != nil {
			fmt.Fprintf(os.Stderr, "provio-stats: open lazy view: %v\n", verr)
			os.Exit(1)
		}
		g, scan, err = view.MaterializeGraph(2)
		if err == nil {
			residency = make(map[int]provio.LevelResidency)
			for _, lr := range view.LevelResidency() {
				residency[lr.Level] = lr
			}
		}
	} else {
		g, scan, err = store.MergePruned(nil, 1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("store layout")
	for _, li := range levels {
		kind := "pack(s)"
		if li.Level == 0 {
			kind = "file(s)"
		}
		fmt.Printf("  L%d: %d %s, %d unit(s), %d bytes", li.Level, li.Files, kind, li.Units, li.Bytes)
		if lr, ok := residency[li.Level]; ok {
			fmt.Printf(" | decoded %d bytes, resident %d/%d unit(s) (%d bytes)",
				lr.DecodedBytes, lr.ResidentUnits, lr.Units, lr.ResidentBytes)
		}
		fmt.Println()
	}
	fmt.Printf("  scan: %s\n\n", scan)
	if err := stats.Compute(g).WriteWithAgents(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
}
