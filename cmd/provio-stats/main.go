// Command provio-stats derives I/O statistics from a provenance store — the
// Darshan-style view of the paper's H5bench use case, answered entirely from
// the provenance: operation counts per API, accumulated time per API
// (bottleneck analysis, when the store was collected with duration
// tracking), and the hottest data objects.
//
// Usage:
//
//	provio-stats -store ./prov
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpc-io/prov-io/internal/cli"
	"github.com/hpc-io/prov-io/internal/stats"
)

func main() {
	storeSpec := flag.String("store", "", cli.StoreUsage+" (required)")
	formatFlag := flag.String("format", "auto", cli.FormatUsage)
	flag.Parse()
	store, err := cli.OpenStore(*storeSpec, *formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	g, err := store.Merge()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	if err := stats.Compute(g).WriteWithAgents(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
}
