// Command provio-stats derives I/O statistics from a provenance store — the
// Darshan-style view of the paper's H5bench use case, answered entirely from
// the provenance: operation counts per API, accumulated time per API
// (bottleneck analysis, when the store was collected with duration
// tracking), and the hottest data objects.
//
// Usage:
//
//	provio-stats -store ./prov
//
// The report opens with the store's physical layout: per-level file/unit/byte
// counts (L0 = loose flush segments, L1+ = compacted packs) and the scan line
// of the merge that fed the statistics (segments decoded vs skipped).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hpc-io/prov-io/internal/cli"
	"github.com/hpc-io/prov-io/internal/stats"
)

func main() {
	storeSpec := flag.String("store", "", cli.StoreUsage+" (required)")
	formatFlag := flag.String("format", "auto", cli.FormatUsage)
	flag.Parse()
	store, err := cli.OpenStore(*storeSpec, *formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	levels, err := store.Levels()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	g, scan, err := store.MergePruned(nil, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("store layout")
	for _, li := range levels {
		kind := "pack(s)"
		if li.Level == 0 {
			kind = "file(s)"
		}
		fmt.Printf("  L%d: %d %s, %d unit(s), %d bytes\n", li.Level, li.Files, kind, li.Units, li.Bytes)
	}
	fmt.Printf("  scan: %s\n\n", scan)
	if err := stats.Compute(g).WriteWithAgents(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
}
