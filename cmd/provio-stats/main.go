// Command provio-stats derives I/O statistics from a provenance store — the
// Darshan-style view of the paper's H5bench use case, answered entirely from
// the provenance: operation counts per API, accumulated time per API
// (bottleneck analysis, when the store was collected with duration
// tracking), and the hottest data objects.
//
// Usage:
//
//	provio-stats -store ./prov
package main

import (
	"flag"
	"fmt"
	"os"

	provio "github.com/hpc-io/prov-io"
	"github.com/hpc-io/prov-io/internal/stats"
)

func main() {
	storeDir := flag.String("store", "", "provenance store directory (required)")
	formatFlag := flag.String("format", "auto",
		"store format: auto | nt | ttl | pbs (reads auto-detect per file)")
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "provio-stats: -store is required")
		os.Exit(1)
	}
	format, err := provio.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	store, err := provio.NewStore(provio.OSBackend{}, *storeDir, format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	g, err := store.Merge()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
	if err := stats.Compute(g).WriteWithAgents(os.Stdout, g); err != nil {
		fmt.Fprintf(os.Stderr, "provio-stats: %v\n", err)
		os.Exit(1)
	}
}
