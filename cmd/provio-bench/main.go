// Command provio-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	provio-bench -exp all                 # every exhibit, small scale
//	provio-bench -exp fig6b -scale paper  # one exhibit at the paper's scale
//	provio-bench -exp fig9 -out ./artifacts
//
// Reports are printed as aligned text tables; experiments with artifacts
// (Figure 9's DOT graph) write them into -out.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/hpc-io/prov-io/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID ("+strings.Join(bench.IDs(), ", ")+") or 'all'")
	scaleFlag := flag.String("scale", "small", "experiment scale: small | paper")
	out := flag.String("out", "", "directory for generated artifacts (optional)")
	chart := flag.Bool("chart", false, "also render each report as ASCII bars")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU pprof profile of the experiment run")
	memprofile := flag.String("memprofile", "", "write a heap pprof profile after the experiment run")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.ScaleSmall
	case "paper":
		scale = bench.ScalePaper
	default:
		fatalf("unknown scale %q (want small|paper)", *scaleFlag)
	}

	ids := bench.IDs()
	switch *exp {
	case "all":
		// paper exhibits only
	case "ablations":
		ids = []string{"abl-flush", "abl-pipeline", "abl-granularity", "abl-format",
			"abl-guid", "abl-query", "abl-ingest", "abl-codec", "abl-parallel-query",
			"abl-sparql", "abl-integrity", "abl-backend"}
	default:
		ids = strings.Split(*exp, ",")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		rep, err := bench.Run(id, scale)
		if err != nil {
			fatalf("experiment %s: %v", id, err)
		}
		fmt.Println(rep.Render())
		if *chart {
			if c := rep.Chart(); c != "" {
				fmt.Println(c)
			}
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatalf("mkdir %s: %v", *out, err)
			}
			path := filepath.Join(*out, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(rep.Render()), 0o644); err != nil {
				fatalf("write %s: %v", path, err)
			}
			if rep.Artifact != "" {
				apath := filepath.Join(*out, rep.ArtifactName)
				if err := os.WriteFile(apath, []byte(rep.Artifact), 0o644); err != nil {
					fatalf("write %s: %v", apath, err)
				}
				fmt.Printf("artifact written: %s\n\n", apath)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provio-bench: "+format+"\n", args...)
	os.Exit(1)
}
