// Command provio-query is the PROV-IO user engine's SPARQL endpoint: it
// merges the per-process sub-graphs of a provenance store and evaluates a
// SPARQL SELECT query against the merged graph.
//
// Usage:
//
//	provio-query -store ./prov 'SELECT ?f WHERE { ?f a provio:File . }'
//	provio-query -store ./prov -file query.rq
//	provio-query -store ./prov -plan 'SELECT ?f WHERE { ?f a provio:File . }'
//
// The prov/provio/rdf/xsd prefixes are pre-bound; queries may add more with
// PREFIX declarations. -plan prints the planner's cardinality-ordered join
// plan (EXPLAIN) without executing the query.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	storeDir := flag.String("store", "", "provenance store directory (required)")
	queryFile := flag.String("file", "", "read the query from this file instead of argv")
	format := flag.String("format", "tsv", "output format: tsv | json (W3C SPARQL results JSON)")
	storeFormat := flag.String("store-format", "auto",
		"store codec: auto | nt | ttl | pbs (reads auto-detect per file)")
	plan := flag.Bool("plan", false, "print the query plan (EXPLAIN) instead of executing")
	flag.Parse()

	if *storeDir == "" {
		fatalf("-store is required")
	}
	var query string
	switch {
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatalf("%v", err)
		}
		query = string(data)
	case flag.NArg() == 1:
		query = flag.Arg(0)
	default:
		fatalf("pass the query as the single argument or via -file")
	}

	sf, err := provio.ParseFormat(*storeFormat)
	if err != nil {
		fatalf("%v", err)
	}
	store, err := provio.NewStore(provio.OSBackend{}, *storeDir, sf)
	if err != nil {
		fatalf("open store: %v", err)
	}
	g, err := store.Merge()
	if err != nil {
		fatalf("merge: %v", err)
	}
	if *plan {
		out, err := provio.ExplainQuery(g, query)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(out)
		return
	}
	res, err := provio.Query(g, query)
	if err != nil {
		fatalf("%v", err)
	}

	if *format == "json" {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	ns := provio.ModelNamespaces()
	fmt.Println(strings.Join(res.Vars, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			if t, ok := row[v]; ok {
				cells[i] = renderTerm(t, ns)
			} else {
				cells[i] = "-"
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d solution(s) over %d triples\n", len(res.Rows), g.Len())
}

func renderTerm(t provio.Term, ns *provio.Namespaces) string {
	if t.IsIRI() {
		if c, ok := ns.Shrink(t.Value); ok {
			return c
		}
		return "<" + t.Value + ">"
	}
	return t.Value
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provio-query: "+format+"\n", args...)
	os.Exit(1)
}
