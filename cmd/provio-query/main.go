// Command provio-query is the PROV-IO user engine's SPARQL endpoint: it
// merges the per-process sub-graphs of a provenance store and evaluates a
// SPARQL SELECT query against the merged graph.
//
// Usage:
//
//	provio-query -store ./prov 'SELECT ?f WHERE { ?f a provio:File . }'
//	provio-query -store file:run.pvs -file query.rq
//	provio-query -store ./prov -plan 'SELECT ?f WHERE { ?f a provio:File . }'
//
// -store accepts a directory or any store spec (dir:/path, file:/run.pvs,
// mount:hot=...,cold=...).
//
// The prov/provio/rdf/xsd prefixes are pre-bound; queries may add more with
// PREFIX declarations. -plan prints the planner's cardinality-ordered join
// plan (EXPLAIN) without executing the query, preceded by the pushdown
// report (segments decoded vs skipped, per level); the plan ends with the
// parallel-execution decision for -workers — the task decomposition, or the
// named reason the plan runs serially. -workers N evaluates with the
// morsel-driven parallel executor (N > 1); results are byte-identical to
// serial. -repeat N runs the query N times in-process, exercising the
// epoch-keyed result cache; each run reports how it was served on stderr.
// -cpuprofile/-memprofile write pprof profiles of the run.
//
// Loading goes through statistics pushdown: segments (and whole packs) whose
// zone maps, predicate lists, and Bloom filters prove the query's patterns
// cannot match are never decoded. Results are identical to an exhaustive
// merge; -no-prune forces the exhaustive path.
//
// -lazy switches to out-of-core execution: instead of merging the store up
// front, the query runs over a lazy view that decodes segments and pack
// members on demand into a cache bounded by -cache-bytes (0 = unbounded), so
// peak resident memory tracks the budget rather than the store size. Results
// are byte-identical to the eager path; the stderr scan line additionally
// reports the decoded-unit cache's hit ratio and residency.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	provio "github.com/hpc-io/prov-io"
	"github.com/hpc-io/prov-io/internal/cli"
)

func main() {
	storeSpec := flag.String("store", "", cli.StoreUsage+" (required)")
	queryFile := flag.String("file", "", "read the query from this file instead of argv")
	format := flag.String("format", "tsv", "output format: tsv | json (W3C SPARQL results JSON)")
	storeFormat := flag.String("store-format", "auto", cli.FormatUsage)
	plan := flag.Bool("plan", false, "print the pushdown report and query plan (EXPLAIN) instead of executing")
	noPrune := flag.Bool("no-prune", false, "disable segment-statistics pushdown (decode every segment)")
	workers := flag.Int("workers", 1, "parallel query workers (1 = serial executor)")
	lazy := flag.Bool("lazy", false, "out-of-core execution: decode segments on demand instead of merging up front")
	cacheBytes := flag.Int64("cache-bytes", 0, "decoded-unit cache budget in bytes for -lazy (0 = unbounded)")
	repeat := flag.Int("repeat", 1, "run the query this many times in-process (cache demo)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU pprof profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap pprof profile to this file")
	flag.Parse()

	var query string
	switch {
	case *queryFile != "":
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatalf("%v", err)
		}
		query = string(data)
	case flag.NArg() == 1:
		query = flag.Arg(0)
	default:
		fatalf("pass the query as the single argument or via -file")
	}

	q, err := provio.ParseQuery(query)
	if err != nil {
		fatalf("%v", err)
	}
	var pruner *provio.SegmentPruner
	if !*noPrune {
		pruner = provio.PrunerForQuery(q)
	}

	store, err := cli.OpenStore(*storeSpec, *storeFormat)
	if err != nil {
		fatalf("open store: %v", err)
	}
	if *repeat < 1 {
		*repeat = 1
	}

	var (
		res      *provio.QueryResult
		info     provio.QueryInfo
		scanLine string // pushdown/cache report for the closing stderr line
		triples  int
	)
	if *lazy {
		view, err := store.OpenLazy(provio.CacheConfig{MaxBytes: *cacheBytes})
		if err != nil {
			fatalf("open lazy view: %v", err)
		}
		src := view.Source(pruner)
		if *plan {
			st := src.Stats()
			budget := "unbounded"
			if *cacheBytes > 0 {
				budget = fmt.Sprintf("%d bytes", *cacheBytes)
			}
			fmt.Printf("pushdown: %d/%d unit(s) admitted (lazy view, cache %s)\n", src.Admitted(), st.Units, budget)
			out, err := provio.ExplainQueryWorkersLazy(src, query, *workers)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Print(out)
			return
		}
		stopCPU := startCPUProfile(*cpuprofile)
		for i := 1; i <= *repeat; i++ {
			res, info, err = provio.QueryLazyParallelInfo(src, query, *workers)
			if err != nil {
				break
			}
			if *repeat > 1 {
				fmt.Fprintf(os.Stderr, "run %d/%d: %d solution(s); %s\n", i, *repeat, len(res.Rows), info.Summary())
			}
		}
		stopCPU()
		if err != nil {
			fatalf("%v", err)
		}
		st := src.Stats()
		scanLine = st.String()
		triples = src.Len() // statistics estimate; the store is never merged
	} else {
		g, scan, err := store.MergePruned(pruner, *workers)
		if err != nil {
			fatalf("merge: %v", err)
		}
		if *plan {
			fmt.Printf("pushdown: %s\n", scan)
			out, err := provio.ExplainQueryWorkers(g, query, *workers)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Print(out)
			return
		}
		stopCPU := startCPUProfile(*cpuprofile)
		for i := 1; i <= *repeat; i++ {
			res, info, err = provio.QueryParallelInfo(g, query, *workers)
			if err != nil {
				break
			}
			if *repeat > 1 {
				fmt.Fprintf(os.Stderr, "run %d/%d: %d solution(s); %s\n", i, *repeat, len(res.Rows), info.Summary())
			}
		}
		stopCPU()
		if err != nil {
			fatalf("%v", err)
		}
		scanLine = scan.String()
		triples = g.Len()
	}
	writeMemProfile(*memprofile)

	if *format == "json" {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	ns := provio.ModelNamespaces()
	fmt.Println(strings.Join(res.Vars, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			if t, ok := row[v]; ok {
				cells[i] = renderTerm(t, ns)
			} else {
				cells[i] = "-"
			}
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Fprintf(os.Stderr, "%d solution(s) over %d triples; %s; %s\n", len(res.Rows), triples, info.Summary(), scanLine)
}

func renderTerm(t provio.Term, ns *provio.Namespaces) string {
	if t.IsIRI() {
		if c, ok := ns.Shrink(t.Value); ok {
			return c
		}
		return "<" + t.Value + ">"
	}
	return t.Value
}

// startCPUProfile begins CPU profiling into path (no-op when empty) and
// returns the stop function.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("cpuprofile: %v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fatalf("cpuprofile: %v", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile dumps a heap profile to path (no-op when empty).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("memprofile: %v", err)
	}
	defer f.Close()
	runtime.GC() // materialize the retained heap before sampling
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatalf("memprofile: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provio-query: "+format+"\n", args...)
	os.Exit(1)
}
