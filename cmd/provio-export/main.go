// Command provio-export converts a provenance store into a W3C PROV-JSON
// interchange document, for consumption by PROV-compliant tools outside
// this framework (the interoperability the paper's RDF/PROV-O choice buys).
//
// Usage:
//
//	provio-export -store ./prov > provenance.json
package main

import (
	"flag"
	"fmt"
	"os"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	storeDir := flag.String("store", "", "provenance store directory (required)")
	formatFlag := flag.String("format", "auto",
		"store format: auto | nt | ttl | pbs (reads auto-detect per file; this only matters if the store is written to)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "provio-export: -store is required")
		os.Exit(1)
	}
	format, err := provio.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
		os.Exit(1)
	}
	store, err := provio.NewStore(provio.OSBackend{}, *storeDir, format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
		os.Exit(1)
	}
	g, err := store.Merge()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := provio.ExportPROVJSON(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
		os.Exit(1)
	}
}
