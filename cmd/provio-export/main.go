// Command provio-export converts a provenance store into a W3C PROV-JSON
// interchange document, for consumption by PROV-compliant tools outside
// this framework (the interoperability the paper's RDF/PROV-O choice buys).
//
// Usage:
//
//	provio-export -store ./prov > provenance.json
package main

import (
	"flag"
	"fmt"
	"os"

	provio "github.com/hpc-io/prov-io"
	"github.com/hpc-io/prov-io/internal/cli"
)

func main() {
	storeSpec := flag.String("store", "", cli.StoreUsage+" (required)")
	formatFlag := flag.String("format", "auto", cli.FormatUsage)
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	store, err := cli.OpenStore(*storeSpec, *formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
		os.Exit(1)
	}
	g, err := store.Merge()
	if err != nil {
		fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := provio.ExportPROVJSON(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "provio-export: %v\n", err)
		os.Exit(1)
	}
}
