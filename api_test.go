package provio_test

import (
	"strings"
	"testing"

	provio "github.com/hpc-io/prov-io"
)

// TestEndToEndPublicAPI drives the whole framework through the public
// surface only: simulated FS, tracker, VOL stack, POSIX wrapper, store
// flush, merge, SPARQL query, and DOT visualization.
func TestEndToEndPublicAPI(t *testing.T) {
	fs := provio.NewMemStore()
	view := fs.NewView()
	if err := view.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}

	store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	tracker := provio.NewTracker(provio.DefaultConfig(), store, 0)
	user := tracker.RegisterUser("alice")
	prog := tracker.RegisterProgram("convert-a1", user)
	ctx := provio.Context{User: user, Program: prog}

	// POSIX side: write a raw input.
	pfs := provio.WrapPOSIX(view, tracker, provio.POSIXAgent{User: user, Program: prog},
		provio.DefaultPOSIXOptions())
	if err := pfs.WriteFile("/data/raw.bin", []byte("sensor-bytes")); err != nil {
		t.Fatal(err)
	}

	// Library side: produce a hierarchical product.
	conn := provio.NewProvConnector(provio.NewNativeConnector(view), tracker, ctx, nil)
	f, err := conn.FileCreate("/data/out.h5")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := conn.DatasetCreate(f.Root(), "signal", provio.TypeFloat64, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.DatasetWrite(ds, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := conn.FileClose(f); err != nil {
		t.Fatal(err)
	}
	if err := tracker.Close(); err != nil {
		t.Fatal(err)
	}

	// Merge and query.
	g, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}
	res, err := provio.Query(g, `SELECT ?f WHERE { ?f a provio:File ; prov:wasAttributedTo ?p . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // raw.bin and out.h5, both created by convert-a1
		t.Fatalf("attributed files = %d, want 2: %v", len(res.Rows), res.Rows)
	}

	// Visualization.
	var dot strings.Builder
	product := provio.IRI(provio.NodeIRI(provio.ModelFile, "/data/out.h5"))
	hl := provio.LineageHighlight(g, product)
	if err := provio.WriteDOT(&dot, g, provio.VizOptions{Highlight: hl}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph provenance") {
		t.Error("DOT output malformed")
	}
}

func TestPublicQueryCount(t *testing.T) {
	g := provio.NewGraph()
	g.Add(provio.Triple{S: provio.IRI("http://e/a"), P: provio.IRI("http://e/p"), O: provio.Integer(1)})
	g.Add(provio.Triple{S: provio.IRI("http://e/b"), P: provio.IRI("http://e/p"), O: provio.Integer(2)})
	res, err := provio.Query(g, `SELECT (COUNT(*) AS ?n) WHERE { ?s <http://e/p> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["n"] != provio.Integer(2) {
		t.Errorf("count = %v", res.Rows[0]["n"])
	}
}

func TestPublicModelSurface(t *testing.T) {
	if len(provio.ModelClasses()) != 19 {
		t.Errorf("ModelClasses = %d", len(provio.ModelClasses()))
	}
	if len(provio.ModelRelations()) != 12 {
		t.Errorf("ModelRelations = %d", len(provio.ModelRelations()))
	}
	ns := provio.ModelNamespaces()
	if _, ok := ns.Base("provio"); !ok {
		t.Error("provio prefix unbound")
	}
	if provio.Version == "" {
		t.Error("empty version")
	}
}

func TestPublicConfigFile(t *testing.T) {
	cfg, err := provio.LoadConfig(strings.NewReader("track = File, Create, Open\nduration = on"))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Enabled(provio.ModelFile) || cfg.Enabled(provio.ModelDataset) || !cfg.Duration {
		t.Error("config file not applied")
	}
}

func TestPublicTurtleRoundTrip(t *testing.T) {
	g := provio.NewGraph()
	g.Add(provio.Triple{S: provio.IRI("http://e/s"), P: provio.IRI("http://e/p"), O: provio.Literal("v")})
	var sb strings.Builder
	if err := provio.WriteTurtle(&sb, g, provio.ModelNamespaces()); err != nil {
		t.Fatal(err)
	}
	g2, _, err := provio.ParseTurtle(strings.NewReader(sb.String()))
	if err != nil || g2.Len() != 1 {
		t.Errorf("round trip: %v, %d triples", err, g2.Len())
	}
}

func TestPublicMPIAndClock(t *testing.T) {
	completion := provio.MPIRun(4, func(r *provio.MPIRank) {
		r.Clock.Advance(1000)
		r.Barrier()
	})
	if completion <= 0 {
		t.Error("no completion time")
	}
	cost := provio.DefaultCostModel()
	if cost.ReadCost(1<<20) <= 0 {
		t.Error("cost model broken")
	}
}
