// Quickstart: track a tiny two-program workflow with PROV-IO, flush the
// provenance store, merge the per-process sub-graphs, and answer a lineage
// question with SPARQL.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	// A simulated parallel filesystem; swap VFSBackend for OSBackend to
	// store provenance on a real disk.
	fs := provio.NewMemStore()
	view := fs.NewView()
	must(view.MkdirAll("/data"))

	store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	must(err)

	// Process 0: a "simulate" program produces a hierarchical file.
	tracker := provio.NewTracker(provio.DefaultConfig(), store, 0)
	user := tracker.RegisterUser("alice")
	sim := tracker.RegisterProgram("simulate-a1", user)
	conn := provio.NewProvConnector(provio.NewNativeConnector(view), tracker,
		provio.Context{User: user, Program: sim}, nil)

	f, err := conn.FileCreate("/data/run42.h5")
	must(err)
	g, err := conn.GroupCreate(f.Root(), "Timestep_0")
	must(err)
	ds, err := conn.DatasetCreate(g, "x", provio.TypeFloat64, []int{8})
	must(err)
	must(conn.DatasetWrite(ds, make([]byte, 64)))
	must(provio.SetStringAttribute(ds, "units", "meters")) // untracked direct write
	must(conn.FileClose(f))

	// Process 1: an "analyze" program reads the file and writes a product.
	tracker2 := provio.NewTracker(provio.DefaultConfig(), store, 1)
	user2 := tracker2.RegisterUser("alice")
	ana := tracker2.RegisterProgram("analyze-a1", user2)
	conn2 := provio.NewProvConnector(provio.NewNativeConnector(view), tracker2,
		provio.Context{User: user2, Program: ana}, nil)

	in, err := conn2.FileOpen("/data/run42.h5", true)
	must(err)
	ds2, err := conn2.DatasetOpen(in.Root(), "Timestep_0/x")
	must(err)
	_, err = conn2.DatasetRead(ds2)
	must(err)
	out, err := conn2.FileCreate("/data/product.h5")
	must(err)
	ods, err := conn2.DatasetCreate(out.Root(), "result", provio.TypeFloat64, []int{1})
	must(err)
	must(conn2.DatasetWrite(ods, make([]byte, 8)))
	must(conn2.FileClose(out))
	must(conn2.FileClose(in))

	// Flush both sub-graphs and merge.
	must(tracker.Close())
	must(tracker2.Close())
	graph, err := store.Merge()
	must(err)
	fmt.Printf("merged provenance graph: %d triples\n\n", graph.Len())

	// Who produced /data/product.h5, and what did that program read?
	res, err := provio.Query(graph, `
		SELECT ?program WHERE {
			?product provio:name "/data/product.h5" ;
			         prov:wasAttributedTo ?program .
		}`)
	must(err)
	fmt.Println("producer of /data/product.h5:")
	printRows(res)

	res, err = provio.Query(graph, `
		SELECT DISTINCT ?input WHERE {
			?input provio:wasReadBy ?api .
			?api prov:wasAssociatedWith ?program .
			?program provio:name "analyze-a1" .
		}`)
	must(err)
	fmt.Println("\ninputs read by analyze-a1:")
	printRows(res)

	// Emit the provenance graph as Graphviz DOT.
	product := provio.IRI(provio.NodeIRI(provio.ModelFile, "/data/product.h5"))
	var dot strings.Builder
	must(provio.WriteDOT(&dot, graph, provio.VizOptions{
		Title:     "quickstart provenance",
		Highlight: provio.LineageHighlight(graph, product),
	}))
	fmt.Printf("\nDOT graph: %d bytes (pipe to `dot -Tpdf` to render)\n", dot.Len())
}

func printRows(res *provio.QueryResult) {
	ns := provio.ModelNamespaces()
	for _, row := range res.Rows {
		for _, v := range res.Vars {
			t := row[v]
			val := t.Value
			if t.IsIRI() {
				if c, ok := ns.Shrink(t.Value); ok {
					val = c
				}
			}
			fmt.Printf("  %s = %s\n", v, val)
		}
	}
	if len(res.Rows) == 0 {
		fmt.Println("  (no results)")
	}
}

func must(err error) {
	if err != nil {
		log.SetOutput(os.Stderr)
		log.Fatal(err)
	}
}
