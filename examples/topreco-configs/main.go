// Top Reco metadata version control (paper §3.1, §6.2): the scientists run
// the training workflow several times with different hyperparameters and
// preselections and need the mapping from each configuration version to the
// accuracy it achieved — without copying config files around by hand. This
// example records three runs through the PROV-IO extensible-class APIs and
// then asks: which configuration gave the best accuracy?
//
//	go run ./examples/topreco-configs
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	provio "github.com/hpc-io/prov-io"
)

type runCfg struct {
	learningRate float64
	batchSize    int
	preselection float64
	accuracy     float64 // measured by the (simulated) training run
}

func main() {
	fs := provio.NewMemStore()
	store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	must(err)

	// Track only the extensible classes (Table 3's Top Reco row).
	cfg := provio.ScenarioConfig(false, "Type", "Configuration", "Metrics", "Program", "User")
	tracker := provio.NewTracker(cfg, store, 0)
	user := tracker.RegisterUser("physicist")
	wf := tracker.RegisterProgram("topreco", user)
	tracker.TrackType(wf, "Machine Learning")

	// Three runs with different configurations. In the real workflow each
	// run takes hours; the accuracy arrives at the end of training.
	runs := []runCfg{
		{learningRate: 0.01, batchSize: 32, preselection: 0.3, accuracy: 0.842},
		{learningRate: 0.05, batchSize: 64, preselection: 0.5, accuracy: 0.911},
		{learningRate: 0.10, batchSize: 64, preselection: 0.7, accuracy: 0.897},
	}
	for version, r := range runs {
		tracker.TrackConfiguration(wf, "learning_rate", provio.Double(r.learningRate), version)
		tracker.TrackConfiguration(wf, "batch_size", provio.Integer(int64(r.batchSize)), version)
		tracker.TrackConfiguration(wf, "preselection", provio.Double(r.preselection), version)
		// The per-run accuracy is attached to the configuration version.
		tracker.TrackConfigurationAccuracy(wf, "run", provio.Integer(int64(version)), version, r.accuracy)
	}
	must(tracker.Close())

	graph, err := store.Merge()
	must(err)
	fmt.Printf("provenance graph: %d triples\n\n", graph.Len())

	// Table 5's Top Reco query: versions and their accuracies (2 statements).
	res, err := provio.Query(graph, `
		SELECT ?version ?accuracy WHERE {
			?configuration provio:Version ?version ;
			               provio:hasAccuracy ?accuracy .
		} ORDER BY DESC(?accuracy)`)
	must(err)
	fmt.Println("configuration versions ranked by accuracy:")
	for _, row := range res.Rows {
		fmt.Printf("  version %s -> accuracy %s\n", row["version"].Value, row["accuracy"].Value)
	}
	best := res.Rows[0]["version"].Value

	// Expand the winning version's full configuration.
	res, err = provio.Query(graph, fmt.Sprintf(`
		SELECT ?name ?value WHERE {
			?c provio:Version %s ;
			   provio:name ?name ;
			   provio:value ?value .
		}`, best))
	must(err)
	type kv struct{ k, v string }
	var kvs []kv
	for _, row := range res.Rows {
		kvs = append(kvs, kv{row["name"].Value, row["value"].Value})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	fmt.Printf("\nbest configuration (version %s):\n", best)
	for _, p := range kvs {
		fmt.Printf("  %s = %s\n", p.k, p.v)
	}
}

func must(err error) {
	if err != nil {
		log.SetOutput(os.Stderr)
		log.Fatal(err)
	}
}
