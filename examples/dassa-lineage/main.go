// DASSA backward lineage (paper §1.1, §6.5): a geophysics pipeline converts
// raw .tdms sensor files to hierarchical .h5 files and decimates them into
// data products. User B then asks: where did decimate output #0 come from,
// and who ran the programs? The answer takes three SPARQL statements per
// backward step, exactly as in the paper's Table 5.
//
//	go run ./examples/dassa-lineage
package main

import (
	"fmt"
	"log"
	"os"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	fs := provio.NewMemStore()
	view := fs.NewView()
	must(view.MkdirAll("/das"))

	store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	must(err)

	// File-granularity lineage configuration (Table 3, DASSA row 1).
	cfg := provio.ScenarioConfig(false,
		"Create", "Open", "Read", "Write", "Fsync", "Rename", "File", "Program", "User")
	tracker := provio.NewTracker(cfg, store, 0)
	user := tracker.RegisterUser("Bob")

	// --- Program 1: tdms2h5 converts the raw sensor file. ---
	conv := tracker.RegisterProgram("tdms2h5", user)
	pfs := provio.WrapPOSIX(view, tracker,
		provio.POSIXAgent{User: user, Program: conv}, provio.DefaultPOSIXOptions())

	// The raw input pre-exists (write it through an untracked view).
	must(fs.NewView().WriteFile("/das/WestSac.tdms", []byte("raw acoustic samples........")))

	raw, err := pfs.Open("/das/WestSac.tdms")
	must(err)
	buf := make([]byte, 64)
	raw.Read(buf)
	must(raw.Close())

	convConn := provio.NewProvConnector(provio.NewNativeConnector(view), tracker,
		provio.Context{User: user, Program: conv}, nil)
	h5, err := convConn.FileCreate("/das/WestSac.h5")
	must(err)
	ds, err := convConn.DatasetCreate(h5.Root(), "channel_00", provio.TypeFloat32, []int{16})
	must(err)
	must(convConn.DatasetWrite(ds, make([]byte, 64)))
	must(convConn.FileClose(h5))

	// --- Program 2: decimate analyzes the converted file. ---
	dec := tracker.RegisterProgram("decimate", user)
	decConn := provio.NewProvConnector(provio.NewNativeConnector(view), tracker,
		provio.Context{User: user, Program: dec}, nil)
	in, err := decConn.FileOpen("/das/WestSac.h5", true)
	must(err)
	ids, err := decConn.DatasetOpen(in.Root(), "channel_00")
	must(err)
	_, err = decConn.DatasetRead(ids)
	must(err)
	out, err := decConn.FileCreate("/das/decimate.h5")
	must(err)
	ods, err := decConn.DatasetCreate(out.Root(), "channel_00", provio.TypeFloat32, []int{2})
	must(err)
	must(decConn.DatasetWrite(ods, make([]byte, 8)))
	must(decConn.FileClose(out))
	must(decConn.FileClose(in))
	must(tracker.Close())

	graph, err := store.Merge()
	must(err)
	fmt.Printf("provenance graph: %d triples\n", graph.Len())

	// --- User B's backward walk: decimate.h5 -> WestSac.h5 -> WestSac.tdms
	target := "/das/decimate.h5"
	fmt.Printf("\nbackward lineage of %s:\n", target)
	for step := 1; ; step++ {
		node := provio.NodeIRI(provio.ModelFile, target)
		// Statement 1: which program produced it?
		r1, err := provio.Query(graph, fmt.Sprintf(
			`SELECT ?program WHERE { <%s> prov:wasAttributedTo ?program . }`, node))
		must(err)
		if len(r1.Rows) == 0 {
			fmt.Printf("  step %d: %s has no recorded producer (origin reached)\n", step, target)
			break
		}
		prog := r1.Rows[0]["program"]
		// Statements 2+3: what did that program read?
		r2, err := provio.Query(graph, fmt.Sprintf(`SELECT DISTINCT ?input WHERE {
			?input provio:wasReadBy ?api .
			?api prov:wasAssociatedWith <%s> .
		}`, prog.Value))
		must(err)
		name := func(t provio.Term) string {
			r, err := provio.Query(graph, fmt.Sprintf(
				`SELECT ?n WHERE { <%s> provio:name ?n . }`, t.Value))
			if err == nil && len(r.Rows) == 1 {
				return r.Rows[0]["n"].Value
			}
			return t.Value
		}
		if len(r2.Rows) == 0 {
			fmt.Printf("  step %d: produced by %s (no tracked inputs)\n", step, name(prog))
			break
		}
		input := r2.Rows[0]["input"]
		fmt.Printf("  step %d: %s  <- produced by %s  <- read %s\n",
			step, target, name(prog), name(input))
		target = name(input)
		if step > 4 {
			break
		}
	}

	// And who ran decimate?
	r, err := provio.Query(graph, `SELECT ?user WHERE {
		?prog provio:name "decimate" ; prov:actedOnBehalfOf ?user .
	}`)
	must(err)
	if len(r.Rows) == 1 {
		ru, _ := provio.Query(graph, fmt.Sprintf(
			`SELECT ?n WHERE { <%s> provio:name ?n . }`, r.Rows[0]["user"].Value))
		fmt.Printf("\ndecimate was started by: %s\n", ru.Rows[0]["n"].Value)
	}
}

func must(err error) {
	if err != nil {
		log.SetOutput(os.Stderr)
		log.Fatal(err)
	}
}
