// H5bench I/O statistics (paper §3.3, §6.2): understand the I/O behavior of
// a shared-file workload — how many operations of each type ran, how long
// they took, and who modified the file. This example runs a small VPIC-style
// write+read workload with durations tracked (usage scenario 2 + the agent
// classes of scenario 3) and answers all three scenario queries.
//
//	go run ./examples/h5bench-stats
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	fs := provio.NewMemStore()
	view := fs.NewView()
	must(view.MkdirAll("/scratch"))
	store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	must(err)

	// I/O API + durations + agents + file: scenarios 2 and 3 combined.
	cfg := provio.ScenarioConfig(true,
		"Create", "Open", "Read", "Write", "Fsync", "Rename",
		"User", "Thread", "Program", "File")
	cost := provio.DefaultCostModel()

	const ranks = 4
	completion := provio.MPIRun(ranks, func(r *provio.MPIRank) {
		tracker := provio.NewTracker(cfg, store, r.ID())
		user := tracker.RegisterUser("h5bench-user")
		prog := tracker.RegisterProgram("vpicio_uni_h5.exe-a1", user)
		thr := tracker.RegisterThread(r.ID(), prog)
		ctx := provio.Context{User: user, Program: prog, Thread: thr}
		conn := provio.NewProvConnector(
			provio.NewCostConnector(provio.NewNativeConnector(view), r.Clock, cost, 1024, ranks),
			tracker, ctx, r.Clock)

		// Rank 0 creates the shared file and datasets.
		if r.ID() == 0 {
			f, err := conn.FileCreate("/scratch/vpic.h5")
			must(err)
			for _, v := range []string{"x", "y", "z", "px", "py", "pz"} {
				_, err := conn.DatasetCreate(f.Root(), v, provio.TypeFloat32, []int{ranks * 64})
				must(err)
			}
			must(conn.FileFlush(f))
			must(conn.FileClose(f))
		}
		r.Barrier()

		// Every rank writes then reads its slice of each variable.
		f, err := conn.FileOpen("/scratch/vpic.h5", false)
		must(err)
		for _, v := range []string{"x", "y", "z", "px", "py", "pz"} {
			ds, err := conn.DatasetOpen(f.Root(), v)
			must(err)
			must(conn.DatasetWriteRows(ds, r.ID()*64, 64, make([]byte, 64*4)))
			if _, err := conn.DatasetReadRows(ds, r.ID()*64, 64); err != nil {
				must(err)
			}
		}
		must(conn.FileClose(f))
		must(tracker.Close())
	})
	fmt.Printf("simulated completion time: %v\n\n", completion)

	graph, err := store.Merge()
	must(err)

	// Scenario 1: how many I/O operations of each type? (1 statement + GROUP-free aggregation)
	res, err := provio.Query(graph, `
		SELECT ?api WHERE { ?api prov:wasMemberOf prov:Activity . }`)
	must(err)
	counts := map[string]int{}
	for _, row := range res.Rows {
		// Activity IRIs look like .../api/H5Dwrite-p2-b7; bucket by name.
		iri := row["api"].Value
		name := iri[lastIndex(iri, '/')+1:]
		if i := lastIndex(name, 'p') - 1; i > 0 && name[i] == '-' {
			name = name[:i]
		}
		counts[name]++
	}
	fmt.Println("scenario-1: I/O API counts")
	var names []string
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-14s %d\n", n, counts[n])
	}

	// Scenario 2: accumulated time per API type (2 statements).
	res, err = provio.Query(graph, `
		SELECT ?api ?duration WHERE {
			?api prov:wasMemberOf prov:Activity ;
			     provio:elapsed ?duration .
		}`)
	must(err)
	totals := map[string]int64{}
	for _, row := range res.Rows {
		iri := row["api"].Value
		name := iri[lastIndex(iri, '/')+1:]
		if i := lastIndex(name, 'p') - 1; i > 0 && name[i] == '-' {
			name = name[:i]
		}
		ns, _ := strconv.ParseInt(row["duration"].Value, 10, 64)
		totals[name] += ns
	}
	fmt.Println("\nscenario-2: accumulated I/O time per API (bottleneck analysis)")
	names = names[:0]
	for n := range totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return totals[names[i]] > totals[names[j]] })
	for _, n := range names {
		fmt.Printf("  %-14s %.3f ms\n", n, float64(totals[n])/1e6)
	}
	if len(names) > 0 {
		fmt.Printf("  -> bottleneck: %s\n", names[0])
	}

	// Scenario 3: who modified the shared file? (3 statements)
	fileNode := provio.NodeIRI(provio.ModelFile, "/scratch/vpic.h5")
	res, err = provio.Query(graph, fmt.Sprintf(`
		SELECT DISTINCT ?thread ?user WHERE {
			<%s> provio:wasWrittenBy ?api .
			?api prov:wasAssociatedWith ?thread .
			?thread prov:actedOnBehalfOf/prov:actedOnBehalfOf ?user .
		}`, fileNode))
	must(err)
	fmt.Println("\nscenario-3: threads that wrote /scratch/vpic.h5")
	for _, row := range res.Rows {
		t := row["thread"].Value
		fmt.Printf("  %s\n", t[lastIndex(t, '/')+1:])
	}
}

func lastIndex(s string, c byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func must(err error) {
	if err != nil {
		log.SetOutput(os.Stderr)
		log.Fatal(err)
	}
}
