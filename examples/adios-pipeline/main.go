// ADIOS-style pipeline: the paper lists integration with other HPC I/O
// libraries (e.g. ADIOS) as future work (§1.5). This example shows the
// PROV-IO model is I/O-library-agnostic: a simulation writes step-oriented
// output through an ADIOS-style engine, an analysis reads it back, and the
// provenance — same model, same store, same queries — captures the variable
// lineage across both programs.
//
//	go run ./examples/adios-pipeline
package main

import (
	"fmt"
	"log"
	"os"

	provio "github.com/hpc-io/prov-io"
)

func main() {
	fs := provio.NewMemStore()
	view := fs.NewView()
	must(view.MkdirAll("/out"))
	store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	must(err)

	tracker := provio.NewTracker(provio.DefaultConfig(), store, 0)
	user := tracker.RegisterUser("fusion-scientist")

	// --- Program 1: the simulation writes 3 steps of two variables. ---
	sim := tracker.RegisterProgram("xgc-simulation-a1", user)
	w, err := provio.OpenADIOS(view, "/out/sim.bp", provio.ADIOSWrite)
	must(err)
	w.WithProvenance(tracker, sim, sim)
	for step := 0; step < 3; step++ {
		must(w.BeginStep())
		must(w.Put("temperature", []int{4}, []byte{byte(step), 1, 2, 3}))
		must(w.Put("density", []int{4}, []byte{4, 5, 6, byte(step)}))
		must(w.EndStep())
	}
	must(w.Close())

	// --- Program 2: the analysis reads the last step. ---
	ana := tracker.RegisterProgram("blob-detector-a1", user)
	r, err := provio.OpenADIOS(view, "/out/sim.bp", provio.ADIOSRead)
	must(err)
	r.WithProvenance(tracker, ana, ana)
	data, dims, err := r.Get(r.Steps()-1, "temperature")
	must(err)
	fmt.Printf("analysis read temperature: %v (dims %v) from step %d\n", data, dims, r.Steps()-1)
	must(r.Close())
	must(tracker.Close())

	// --- The same user engine answers the same questions. ---
	graph, err := store.Merge()
	must(err)
	fmt.Printf("provenance graph: %d triples\n\n", graph.Len())

	res, err := provio.Query(graph, `
		SELECT (COUNT(?api) AS ?writes) WHERE {
			?var a provio:Dataset ;
			     provio:name "temperature" ;
			     provio:wasWrittenBy ?api .
		}`)
	must(err)
	fmt.Printf("temperature was written %s times\n", res.Rows[0]["writes"].Value)

	res, err = provio.Query(graph, `
		SELECT DISTINCT ?reader WHERE {
			?var provio:name "temperature" ;
			     provio:wasReadBy ?api .
			?api prov:wasAssociatedWith ?prog .
			?prog provio:name ?reader .
		}`)
	must(err)
	fmt.Println("programs that read temperature:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row["reader"].Value)
	}

	// The engine file itself is attributed to the simulation.
	res, err = provio.Query(graph, `
		SELECT ?prog WHERE {
			?f a provio:File ;
			   provio:name "/out/sim.bp" ;
			   prov:wasAttributedTo ?p .
			?p provio:name ?prog .
		}`)
	must(err)
	fmt.Printf("/out/sim.bp produced by: %s\n", res.Rows[0]["prog"].Value)
}

func must(err error) {
	if err != nil {
		log.SetOutput(os.Stderr)
		log.Fatal(err)
	}
}
