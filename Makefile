# PROV-IO (Go reproduction) build targets.

GO ?= go

.PHONY: all build test vet race bench bench-paper experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/mpi/ ./internal/vfs/ ./internal/rdf/ ./internal/core/ ./internal/vol/

# One iteration of every experiment benchmark at small scale.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# The paper's full parameter sweeps (several minutes).
bench-paper:
	PROVIO_BENCH_SCALE=paper $(GO) test -bench='Fig|Table' -benchtime=1x .

# Regenerate every table/figure with the CLI, writing artifacts to ./artifacts.
experiments:
	$(GO) run ./cmd/provio-bench -exp all -scale paper -out artifacts

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dassa-lineage
	$(GO) run ./examples/topreco-configs
	$(GO) run ./examples/h5bench-stats
	$(GO) run ./examples/adios-pipeline

clean:
	rm -rf artifacts
