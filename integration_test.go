package provio_test

// Cross-component integration tests driven entirely through the public API:
// multi-library tracking (hierarchical + ADIOS + POSIX in one run),
// cross-run provenance, and lineage reduction.

import (
	"fmt"
	"strings"
	"testing"

	provio "github.com/hpc-io/prov-io"
)

// TestThreeInterfacesOneProvenanceGraph runs a pipeline whose stages use
// three different I/O interfaces — POSIX (raw input), the hierarchical
// library (intermediate), and the ADIOS-style engine (final product) — and
// checks that one merged provenance graph answers the end-to-end lineage
// question. This is the paper's core interoperability claim exercised
// across every integrated I/O path.
func TestThreeInterfacesOneProvenanceGraph(t *testing.T) {
	fs := provio.NewMemStore()
	view := fs.NewView()
	if err := view.MkdirAll("/pipe"); err != nil {
		t.Fatal(err)
	}
	store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	if err != nil {
		t.Fatal(err)
	}
	tracker := provio.NewTracker(provio.DefaultConfig(), store, 0)
	user := tracker.RegisterUser("chain-user")

	// Stage 1 (POSIX): ingest writes the raw file.
	ingest := tracker.RegisterProgram("ingest", user)
	pfs := provio.WrapPOSIX(view, tracker, provio.POSIXAgent{User: user, Program: ingest},
		provio.DefaultPOSIXOptions())
	if err := pfs.WriteFile("/pipe/raw.dat", []byte("raw")); err != nil {
		t.Fatal(err)
	}

	// Stage 2 (hierarchical library): convert reads raw, writes mid.h5.
	convert := tracker.RegisterProgram("convert", user)
	pfs2 := provio.WrapPOSIX(view, tracker, provio.POSIXAgent{User: user, Program: convert},
		provio.DefaultPOSIXOptions())
	raw, err := pfs2.Open("/pipe/raw.dat")
	if err != nil {
		t.Fatal(err)
	}
	raw.Read(make([]byte, 3))
	raw.Close()
	conn := provio.NewProvConnector(provio.NewNativeConnector(view), tracker,
		provio.Context{User: user, Program: convert}, nil)
	h5, err := conn.FileCreate("/pipe/mid.h5")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := conn.DatasetCreate(h5.Root(), "v", provio.TypeUint8, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.DatasetWrite(ds, []byte("raw")); err != nil {
		t.Fatal(err)
	}
	conn.FileClose(h5)

	// Stage 3 (ADIOS): export reads mid.h5 and writes final.bp.
	export := tracker.RegisterProgram("export", user)
	conn2 := provio.NewProvConnector(provio.NewNativeConnector(view), tracker,
		provio.Context{User: user, Program: export}, nil)
	in, err := conn2.FileOpen("/pipe/mid.h5", true)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := conn2.DatasetOpen(in.Root(), "v")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := conn2.DatasetRead(ds2)
	if err != nil {
		t.Fatal(err)
	}
	conn2.FileClose(in)
	eng, err := provio.OpenADIOS(view, "/pipe/final.bp", provio.ADIOSWrite)
	if err != nil {
		t.Fatal(err)
	}
	eng.WithProvenance(tracker, export, export)
	eng.BeginStep()
	eng.Put("v", []int{len(payload)}, payload)
	eng.EndStep()
	eng.Close()

	if err := tracker.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := store.Merge()
	if err != nil {
		t.Fatal(err)
	}

	// Walk the chain backwards: final.bp -> export -> mid.h5 -> convert ->
	// raw.dat -> ingest.
	target := "/pipe/final.bp"
	producers := []string{}
	for hop := 0; hop < 5 && target != ""; hop++ {
		node := provio.NodeIRI(provio.ModelFile, target)
		r1, err := provio.Query(g, fmt.Sprintf(
			`SELECT ?p WHERE { <%s> prov:wasAttributedTo ?prog . ?prog provio:name ?p . }`, node))
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Rows) == 0 {
			break
		}
		prog := r1.Rows[0]["p"].Value
		producers = append(producers, prog)
		// At full granularity reads attach to datasets, so a file-level
		// backward step accepts either a read or an open access.
		r2, err := provio.Query(g, fmt.Sprintf(`SELECT DISTINCT ?n WHERE {
			{ ?input provio:wasReadBy ?api . } UNION { ?input provio:wasOpenedBy ?api . }
			?api prov:wasAssociatedWith ?pr .
			?pr provio:name "%s" .
			?input a provio:File ;
			       provio:name ?n .
		}`, prog))
		if err != nil {
			t.Fatal(err)
		}
		target = ""
		if len(r2.Rows) > 0 {
			target = r2.Rows[0]["n"].Value
		}
	}
	want := []string{"export", "convert", "ingest"}
	if len(producers) != 3 {
		t.Fatalf("producer chain = %v, want %v", producers, want)
	}
	for i := range want {
		if producers[i] != want[i] {
			t.Fatalf("producer chain = %v, want %v", producers, want)
		}
	}
}

// TestCrossRunBestConfiguration records two workflow runs into separate
// stores and finds the best configuration across runs — the multi-run
// provenance of the paper's future-work section (§8).
func TestCrossRunBestConfiguration(t *testing.T) {
	fs := provio.NewMemStore()
	var stores []*provio.Store
	accs := []float64{0.81, 0.93}
	for run, acc := range accs {
		store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()},
			fmt.Sprintf("/prov/run%d", run), provio.FormatTurtle)
		if err != nil {
			t.Fatal(err)
		}
		tr := provio.NewTracker(provio.DefaultConfig(), store, 0)
		wf := tr.RegisterProgram("topreco", tr.RegisterUser("u"))
		tr.TrackConfigurationAccuracy(wf, "learning_rate",
			provio.Double(0.01*float64(run+1)), run, acc)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, store)
	}
	merged, err := provio.MergeStores(stores...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := provio.Query(merged, `
		SELECT ?version ?acc WHERE {
			?c provio:Version ?version ; provio:hasAccuracy ?acc .
		} ORDER BY DESC(?acc) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["version"] != provio.Integer(1) {
		t.Errorf("best run = %v, want version 1", res.Rows)
	}
}

// TestReduceBeforeVisualize reduces a larger provenance graph to one
// product's neighborhood before rendering, checking the DOT shrinks.
func TestReduceBeforeVisualize(t *testing.T) {
	fs := provio.NewMemStore()
	view := fs.NewView()
	view.MkdirAll("/d")
	store, _ := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	tracker := provio.NewTracker(provio.DefaultConfig(), store, 0)
	prog := tracker.RegisterProgram("writer", tracker.RegisterUser("u"))
	conn := provio.NewProvConnector(provio.NewNativeConnector(view), tracker,
		provio.Context{Program: prog}, nil)
	// 30 unrelated files plus one of interest.
	for i := 0; i < 30; i++ {
		f, err := conn.FileCreate(fmt.Sprintf("/d/f%02d.h5", i))
		if err != nil {
			t.Fatal(err)
		}
		conn.FileClose(f)
	}
	tracker.Close()
	g, _ := store.Merge()

	product := provio.IRI(provio.NodeIRI(provio.ModelFile, "/d/f00.h5"))
	reduced := provio.ReduceLineage(g, []provio.Term{product}, 1)
	if reduced.Len() >= g.Len() {
		t.Fatalf("reduction ineffective: %d >= %d", reduced.Len(), g.Len())
	}
	var full, small strings.Builder
	provio.WriteDOT(&full, g, provio.VizOptions{})
	provio.WriteDOT(&small, reduced, provio.VizOptions{})
	if small.Len() >= full.Len() {
		t.Errorf("reduced DOT (%d) not smaller than full (%d)", small.Len(), full.Len())
	}
	if !strings.Contains(small.String(), "f00.h5") {
		t.Error("product missing from reduced DOT")
	}
}
