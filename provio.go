// Package provio is PROV-IO: an I/O-centric provenance framework for
// scientific data on HPC systems, reproducing Han et al., HPDC 2022
// (doi:10.1145/3502181.3531477) in pure Go.
//
// The framework has four pillars:
//
//   - The PROV-IO model (Model* identifiers): a W3C PROV extension with
//     concrete Data Object, I/O API, Agent, and Extensible sub-classes and
//     the relations connecting them.
//   - Provenance tracking: a VOL connector (NewProvConnector) that
//     transparently intercepts hierarchical-format I/O, and a POSIX syscall
//     wrapper (WrapPOSIX) for raw file I/O; both feed a Tracker.
//   - A provenance store (Store) persisting per-process sub-graphs behind a
//     pluggable codec layer — Turtle and N-Triples for interchange, a binary
//     ID-space format (FormatBinary, .pbs) for speed — with GUID-based
//     merging over auto-detected mixed-format directories.
//   - A user engine: SPARQL queries (Query) and Graphviz visualization
//     (WriteDOT) over the collected provenance.
//
// A minimal end-to-end flow:
//
//	fs := provio.NewMemStore()
//	store, _ := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
//	tracker := provio.NewTracker(provio.DefaultConfig(), store, 0)
//	user := tracker.RegisterUser("alice")
//	prog := tracker.RegisterProgram("convert-a1", user)
//	conn := provio.NewProvConnector(provio.NewNativeConnector(fs.NewView()),
//		tracker, provio.Context{User: user, Program: prog}, nil)
//	// ... perform I/O through conn; then:
//	tracker.Close()
//	graph, _ := store.Merge()
//	res, _ := provio.Query(graph, `SELECT ?f WHERE { ?f a provio:File . }`)
//
// See examples/ for complete programs covering the paper's three use cases.
package provio

// Version is the release version of this reproduction.
const Version = "1.0.0"
