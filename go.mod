module github.com/hpc-io/prov-io

go 1.22
