package provio

import (
	"io"

	"github.com/hpc-io/prov-io/internal/adios"
	"github.com/hpc-io/prov-io/internal/core"
	"github.com/hpc-io/prov-io/internal/hdf5"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/mpi"
	"github.com/hpc-io/prov-io/internal/posixio"
	"github.com/hpc-io/prov-io/internal/provjson"
	"github.com/hpc-io/prov-io/internal/rdf"
	"github.com/hpc-io/prov-io/internal/simclock"
	"github.com/hpc-io/prov-io/internal/sparql"
	"github.com/hpc-io/prov-io/internal/vfs"
	"github.com/hpc-io/prov-io/internal/viz"
	"github.com/hpc-io/prov-io/internal/vol"
)

// ---- RDF layer ----

// Term is one RDF term (IRI, blank node, or literal).
type Term = rdf.Term

// Triple is one RDF statement.
type Triple = rdf.Triple

// Graph is an in-memory indexed RDF graph.
type Graph = rdf.Graph

// Namespaces maps prefixes to IRI bases.
type Namespaces = rdf.Namespaces

// NewGraph returns an empty RDF graph.
func NewGraph() *Graph { return rdf.NewGraph() }

// Term constructors.
var (
	IRI          = rdf.IRI
	Blank        = rdf.Blank
	Literal      = rdf.Literal
	TypedLiteral = rdf.TypedLiteral
	Integer      = rdf.Integer
	Double       = rdf.Double
	Decimal      = rdf.Decimal
	Boolean      = rdf.Boolean
)

// WriteTurtle serializes a graph as Turtle.
func WriteTurtle(w io.Writer, g *Graph, ns *Namespaces) error { return rdf.WriteTurtle(w, g, ns) }

// ParseTurtle parses a Turtle document.
func ParseTurtle(r io.Reader) (*Graph, *Namespaces, error) { return rdf.ParseTurtle(r) }

// ---- PROV-IO model ----

// Class is one PROV-IO model sub-class.
type Class = model.Class

// Relation is one PROV-IO model relation.
type Relation = model.Relation

// The Data Object (Entity) sub-classes.
var (
	ModelDirectory = model.Directory
	ModelFile      = model.File
	ModelGroup     = model.Group
	ModelDataset   = model.Dataset
	ModelAttribute = model.Attribute
	ModelDatatype  = model.Datatype
	ModelLink      = model.Link
)

// The I/O API (Activity) sub-classes.
var (
	ModelCreate = model.Create
	ModelOpen   = model.Open
	ModelRead   = model.Read
	ModelWrite  = model.Write
	ModelFsync  = model.Fsync
	ModelRename = model.Rename
)

// The Agent sub-classes.
var (
	ModelUser    = model.User
	ModelThread  = model.Thread
	ModelProgram = model.Program
)

// The Extensible Class sub-classes.
var (
	ModelType          = model.Type
	ModelConfiguration = model.Configuration
	ModelMetrics       = model.Metrics
)

// ModelClasses returns every sub-class in Table 2 order.
func ModelClasses() []Class { return model.AllClasses() }

// ModelRelations returns the model's relations.
func ModelRelations() []Relation { return model.AllRelations() }

// ModelNamespaces returns the prov/provio/rdf/xsd prefix table.
func ModelNamespaces() *Namespaces { return model.Namespaces() }

// NodeIRI mints the GUID node IRI for a data object/agent identity.
func NodeIRI(class Class, identity string) string { return model.NodeIRI(class, identity) }

// ---- Core library: config, tracker, store ----

// Config selects tracked sub-classes and store behavior.
type Config = core.Config

// Tracker is the per-process PROV-IO library instance.
type Tracker = core.Tracker

// Store is the provenance store (per-process sub-graph files + merge).
type Store = core.Store

// StoreBackend abstracts provenance store placement: a directory, the
// simulated PFS, an in-memory namespace, a single-file .pvs archive, or a
// mount spanning several (DESIGN.md "Store backends & mounts").
type StoreBackend = core.StoreBackend

// Backend is StoreBackend's historical name.
type Backend = core.Backend

// VFSBackend stores provenance in the simulated PFS.
type VFSBackend = core.VFSBackend

// OSBackend stores provenance on the host filesystem.
type OSBackend = core.OSBackend

// Backend capability bits reported by StoreBackend.Caps.
const (
	CapAtomicWrite = core.CapAtomicWrite
	CapPersistent  = core.CapPersistent
	CapArchive     = core.CapArchive
)

// CapsString renders capability bits for display.
func CapsString(caps uint32) string { return core.CapsString(caps) }

// Format selects the store serialization codec. Reads always auto-detect
// each file's codec from its magic bytes, so any Format opens any store
// directory; Format only governs what the store writes.
type Format = core.Format

// Store formats.
const (
	FormatTurtle   = core.FormatTurtle
	FormatNTriples = core.FormatNTriples
	// FormatBinary is the ID-space binary segment codec (.pbs).
	FormatBinary = core.FormatBinary
	// FormatAuto resolves to the format already present in the store
	// directory (Turtle when empty).
	FormatAuto = core.FormatAuto
)

// ParseFormat parses a -format flag value: auto | nt | ttl | pbs (plus the
// aliases turtle, ntriples, binary).
func ParseFormat(s string) (Format, error) { return core.ParseFormat(s) }

// Mode selects when the in-memory sub-graph is serialized: once at the end
// of the workflow, or periodically every FlushEvery records.
type Mode = core.Mode

// Serialization modes.
const (
	ModeAtEnd    = core.ModeAtEnd
	ModePeriodic = core.ModePeriodic
)

// Pipeline selects how periodic flushes reach the store: an async
// background writer appending delta segments (default), inline delta
// segments, or inline full re-serialization.
type Pipeline = core.Pipeline

// Flush pipelines.
const (
	PipelineAsync  = core.PipelineAsync
	PipelineDelta  = core.PipelineDelta
	PipelineInline = core.PipelineInline
)

// DefaultConfig enables every sub-class.
func DefaultConfig() *Config { return core.DefaultConfig() }

// ScenarioConfig enables exactly the listed sub-classes.
func ScenarioConfig(duration bool, classes ...string) *Config {
	return core.ScenarioConfig(duration, classes...)
}

// LoadConfig parses a PROV-IO configuration file.
func LoadConfig(r io.Reader) (*Config, error) { return core.LoadConfig(r) }

// NewStore creates a provenance store under dir.
func NewStore(b Backend, dir string, f Format) (*Store, error) { return core.NewStore(b, dir, f) }

// OpenStore opens a provenance store from a spec string: dir:/path (or a
// bare path), mem:, file:/path.pvs, or mount:hot=SPEC,cold=SPEC — the form
// the CLI tools' -store flag and the config file's store key accept.
func OpenStore(spec string, f Format) (*Store, error) { return core.OpenStore(spec, f) }

// NewTracker creates the PROV-IO library instance for process pid.
func NewTracker(cfg *Config, store *Store, pid int) *Tracker {
	return core.NewTracker(cfg, store, pid)
}

// ReduceLineage extracts the provenance sub-graph within maxHops lineage
// edges of the roots (provenance reduction; maxHops<=0 is unbounded). The
// closure is memoized on the graph's current snapshot — a repeat against an
// unchanged graph is served from the cache, and any Add/Remove invalidates
// it. Treat the returned graph as read-only; use ReduceLineageUncached for
// a private copy.
func ReduceLineage(g *Graph, roots []Term, maxHops int) *Graph {
	return core.ReduceLineage(g, roots, maxHops)
}

// ReduceLineageUncached is ReduceLineage without the snapshot memo: the
// caller owns the returned graph.
func ReduceLineageUncached(g *Graph, roots []Term, maxHops int) *Graph {
	return core.ReduceLineageUncached(g, roots, maxHops)
}

// ---- Leveled segments & statistics pushdown ----

// SegmentPruner is the pushdown hint of a pruned store read: the union of
// triple patterns the read could touch. Store.MergePruned skips segments
// (and whole packs) whose embedded statistics prove no pattern can match.
type SegmentPruner = core.SegmentPruner

// PrunePattern is one triple pattern of a SegmentPruner; nil positions are
// unbound.
type PrunePattern = core.PrunePattern

// ScanStats reports what a pruned read decoded versus skipped, per level
// (Store.MergePruned, Store.ReduceLineagePruned).
type ScanStats = core.ScanStats

// LevelScan is one level's slice of a ScanStats.
type LevelScan = core.LevelScan

// LevelInfo is one level's occupancy in Store.Levels' layout report.
type LevelInfo = core.LevelInfo

// ErrNothingToPack is returned by Store.PackSegments when the store holds
// no segments or lower-level packs to fold.
var ErrNothingToPack = core.ErrNothingToPack

// PrunerForQuery derives a segment pruner from a parsed SPARQL query — the
// glue between ParseQuery and Store.MergePruned. It returns nil (prune
// nothing) when the query's shape forbids pushdown (zero-length property
// paths).
func PrunerForQuery(q *sparql.Query) *SegmentPruner {
	pats, ok := q.PrunePatterns()
	if !ok {
		return nil
	}
	pr := &SegmentPruner{}
	for _, p := range pats {
		pr.Patterns = append(pr.Patterns, PrunePattern{S: p[0], P: p[1], O: p[2]})
	}
	return pr
}

// MergeStores unifies several runs' provenance stores into one graph
// (cross-run provenance).
func MergeStores(stores ...*Store) (*Graph, error) { return core.MergeStores(stores...) }

// ---- Out-of-core execution: lazy views & the decoded-unit cache ----

// CacheConfig bounds a LazyView's decoded-unit cache (MaxBytes <= 0 is
// unbounded).
type CacheConfig = core.CacheConfig

// CacheStats is a point-in-time report of a lazy view's cache counters.
type CacheStats = core.CacheStats

// LazyView is the out-of-core read handle of a store (Store.OpenLazy): the
// layout pinned at open time plus a byte-budgeted cache of decoded units.
type LazyView = core.LazyView

// LazySource federates a lazy view's per-unit snapshots behind the query
// engine's source interface for one query (LazyView.Source).
type LazySource = core.LazySource

// LevelResidency is one level's disk/decoded/resident byte breakdown of a
// lazy view (LazyView.LevelResidency) — the sizing input for -cache-bytes.
type LevelResidency = core.LevelResidency

// ErrStaleView classifies a lazy read that found the store layout changed
// under an open view (a concurrent Compact or PackSegments); reopen with
// Store.OpenLazy.
var ErrStaleView = core.ErrStaleView

// The federated lazy source must satisfy the morsel-parallel scan surface —
// this is the contract that lets Eval/EvalParallel run unchanged over a
// store larger than the cache budget.
var _ sparql.ScanSource = (*core.LazySource)(nil)

// QueryLazyParallelInfo evaluates a SPARQL SELECT query against a lazy
// source with the morsel-driven parallel executor. Results are
// byte-identical to QueryParallelInfo over the eagerly merged store; only
// the resident memory differs. The source's sticky view error (a concurrent
// compaction, a corrupted unit) is surfaced here, since the engine's source
// interface cannot carry errors.
func QueryLazyParallelInfo(src *LazySource, query string, workers int) (*QueryResult, QueryInfo, error) {
	q, err := sparql.Parse(query, model.Namespaces())
	if err != nil {
		return nil, QueryInfo{}, err
	}
	res, info, err := sparql.EvalParallelOnInfo(src, q, workers)
	if err != nil {
		return nil, info, err
	}
	if serr := src.Err(); serr != nil {
		return nil, info, serr
	}
	return res, info, nil
}

// ExplainQueryWorkersLazy is ExplainQueryWorkers against a lazy source: the
// plan, compiled from the units' statistics instead of exact graph
// cardinalities, plus the parallel-execution decision.
func ExplainQueryWorkersLazy(src *LazySource, query string, workers int) (string, error) {
	out, err := sparql.ExplainWorkersOn(src, query, model.Namespaces(), workers)
	if err != nil {
		return "", err
	}
	if serr := src.Err(); serr != nil {
		return "", serr
	}
	return out, nil
}

// ---- Integrity: verification, hash chains, crash harness ----

// VerifyReport is the result of auditing a store end-to-end (Store.Verify,
// Store.VerifyAgainst): codec-level decode checks, seal consistency, and
// per-process hash-chain continuity.
type VerifyReport = core.VerifyReport

// Defect is one integrity finding of a store audit.
type Defect = core.Defect

// DefectKind classifies an integrity finding.
type DefectKind = core.DefectKind

// Defect kinds, in rising severity.
const (
	DefectOrphaned  = core.DefectOrphaned
	DefectMissing   = core.DefectMissing
	DefectTruncated = core.DefectTruncated
	DefectTampered  = core.DefectTampered
)

// IntegrityError is returned by Store.Compact when a store's damage is not
// attributable to an interrupted write of unacknowledged data.
type IntegrityError = core.IntegrityError

// ParseHeads parses a chain-heads anchor document, the format written by
// VerifyReport.FormatHeads and provio-verify -write-heads.
func ParseHeads(data []byte) (map[int][32]byte, error) { return core.ParseHeads(data) }

// CrashSweepConfig parameterizes the deterministic crash-consistency sweep.
type CrashSweepConfig = core.CrashSweepConfig

// CrashSweepReport summarizes a crash-consistency sweep.
type CrashSweepReport = core.CrashSweepReport

// RunCrashSweep crashes a fixed tracking workload at every mutating-write
// boundary and checks that recovery never loses acknowledged records
// (provio-verify -selftest).
func RunCrashSweep(cfg CrashSweepConfig) (*CrashSweepReport, error) {
	return core.RunCrashSweep(cfg)
}

// ---- ADIOS-style I/O library (second integrated library) ----

// ADIOSEngine is a step-oriented I/O engine in the ADIOS style with
// built-in PROV-IO integration.
type ADIOSEngine = adios.Engine

// ADIOSMode selects engine direction.
type ADIOSMode = adios.Mode

// ADIOS engine modes.
const (
	ADIOSWrite = adios.ModeWrite
	ADIOSRead  = adios.ModeRead
)

// OpenADIOS opens an ADIOS-style engine on the simulated filesystem.
func OpenADIOS(view *FSView, path string, mode ADIOSMode) (*ADIOSEngine, error) {
	return adios.Open(view, path, mode)
}

// ---- Hierarchical data format (HDF5-analog) + VOL ----

// H5File is an open hierarchical-format file.
type H5File = hdf5.File

// H5Group is a group handle.
type H5Group = hdf5.Group

// H5Dataset is a dataset handle.
type H5Dataset = hdf5.Dataset

// H5Datatype describes element types.
type H5Datatype = hdf5.Datatype

// H5Object is any attribute-bearing object.
type H5Object = hdf5.Object

// Predefined datatypes.
var (
	TypeInt32   = hdf5.TypeInt32
	TypeInt64   = hdf5.TypeInt64
	TypeUint8   = hdf5.TypeUint8
	TypeFloat32 = hdf5.TypeFloat32
	TypeFloat64 = hdf5.TypeFloat64
	TypeString  = hdf5.TypeString
)

// Connector is the VOL plugin interface.
type Connector = vol.Connector

// Context carries the agents I/O is attributed to.
type Context = vol.Context

// NewNativeConnector returns the terminal VOL connector over a filesystem
// view.
func NewNativeConnector(view *FSView) *vol.Native { return vol.NewNative(view) }

// NewProvConnector stacks the PROV-IO Lib Connector on next.
func NewProvConnector(next Connector, t *Tracker, ctx Context, clock *Clock) *vol.ProvConnector {
	return vol.NewProvConnector(next, t, ctx, clock)
}

// NewCostConnector stacks the experiment cost model on next.
func NewCostConnector(next Connector, clock *Clock, cost CostModel, byteScale float64, ranks int) *vol.CostConnector {
	return vol.NewCostConnector(next, clock, cost, byteScale, ranks)
}

// Attribute helpers on hierarchical objects.
var (
	SetStringAttribute  = hdf5.SetStringAttribute
	GetStringAttribute  = hdf5.GetStringAttribute
	SetInt64Attribute   = hdf5.SetInt64Attribute
	GetInt64Attribute   = hdf5.GetInt64Attribute
	SetFloat64Attribute = hdf5.SetFloat64Attribute
	GetFloat64Attribute = hdf5.GetFloat64Attribute
	ListAttributes      = hdf5.ListAttributes
)

// ---- POSIX wrapper ----

// POSIXFS is the wrapped (interposed) POSIX filesystem.
type POSIXFS = posixio.FS

// POSIXFile is a wrapped open file.
type POSIXFile = posixio.File

// POSIXAgent identifies who performs wrapped I/O.
type POSIXAgent = posixio.Agent

// POSIXOptions configures the wrapper.
type POSIXOptions = posixio.Options

// WrapPOSIX splices the PROV-IO syscall wrapper in front of a view.
func WrapPOSIX(view *FSView, t *Tracker, agent POSIXAgent, opts POSIXOptions) *POSIXFS {
	return posixio.Wrap(view, t, agent, opts)
}

// DefaultPOSIXOptions tracks everything.
func DefaultPOSIXOptions() POSIXOptions { return posixio.DefaultOptions() }

// POSIX open flags.
const (
	O_RDONLY = vfs.O_RDONLY
	O_WRONLY = vfs.O_WRONLY
	O_RDWR   = vfs.O_RDWR
	O_CREATE = vfs.O_CREATE
	O_TRUNC  = vfs.O_TRUNC
	O_APPEND = vfs.O_APPEND
	O_EXCL   = vfs.O_EXCL
)

// ---- Simulation substrate ----

// MemStore is the shared in-memory parallel-filesystem namespace.
type MemStore = vfs.Store

// FSView is a process-local handle on a MemStore.
type FSView = vfs.View

// Clock is a virtual clock.
type Clock = simclock.Clock

// CostModel holds the calibrated simulation constants.
type CostModel = simclock.CostModel

// NewMemStore returns an empty simulated filesystem.
func NewMemStore() *MemStore { return vfs.NewStore() }

// NewClock returns a virtual clock at zero.
func NewClock() *Clock { return simclock.NewClock() }

// DefaultCostModel returns the calibrated experiment cost model.
func DefaultCostModel() CostModel { return simclock.Default() }

// MPIRank is the per-rank context of the MPI simulator.
type MPIRank = mpi.Rank

// MPIRun executes fn on every rank and returns the simulated completion
// time (max over rank clocks).
var MPIRun = mpi.Run

// ---- User engine: query + visualization ----

// QueryResult is a SPARQL solution sequence.
type QueryResult = sparql.Result

// Binding maps variable names to terms.
type Binding = sparql.Binding

// Query parses and evaluates a SPARQL SELECT query against g, with the
// PROV-IO namespaces pre-bound. Evaluation runs against an immutable
// snapshot of g: the graph lock is taken once to pin the view, so queries
// do not block concurrent tracking and vice versa.
func Query(g *Graph, query string) (*QueryResult, error) {
	return sparql.Exec(g, query, model.Namespaces())
}

// QueryParallel is Query with morsel-driven parallel execution: the plan's
// leading operator (index scan, property path, or each UNION alternative)
// is partitioned across `workers` goroutines over the same snapshot.
// Results are identical — byte for byte — to Query; workers <= 1 is the
// serial path.
func QueryParallel(g *Graph, query string, workers int) (*QueryResult, error) {
	return sparql.ExecParallel(g, query, model.Namespaces(), workers)
}

// QueryInfo reports how a query was served: from the epoch-keyed result
// cache, by the parallel executor (with task count), or serially (with the
// named reason).
type QueryInfo = sparql.ExecInfo

// QueryParallelInfo is QueryParallel exposing the execution report.
func QueryParallelInfo(g *Graph, query string, workers int) (*QueryResult, QueryInfo, error) {
	return sparql.ExecParallelInfo(g, query, model.Namespaces(), workers)
}

// ParseQuery parses a SPARQL SELECT query without evaluating it.
func ParseQuery(query string) (*sparql.Query, error) {
	return sparql.Parse(query, model.Namespaces())
}

// ExplainQuery compiles the query against g and returns the planner's
// EXPLAIN rendering — the cardinality-ordered join plan — without executing.
func ExplainQuery(g *Graph, query string) (string, error) {
	return sparql.Explain(g, query, model.Namespaces())
}

// ExplainQueryWorkers is ExplainQuery plus the parallel-execution decision
// for the given worker count: the task decomposition, or the named reason
// the plan would run serially.
func ExplainQueryWorkers(g *Graph, query string, workers int) (string, error) {
	return sparql.ExplainWorkers(g, query, model.Namespaces(), workers)
}

// VizOptions controls DOT rendering.
type VizOptions = viz.Options

// WriteDOT renders a provenance graph as Graphviz DOT.
func WriteDOT(w io.Writer, g *Graph, opts VizOptions) error { return viz.WriteDOT(w, g, opts) }

// LineageHighlight computes the node set of a product's backward lineage.
func LineageHighlight(g *Graph, product Term) map[string]bool {
	return viz.LineageHighlight(g, product)
}

// ExportPROVJSON writes the graph as a W3C PROV-JSON interchange document.
func ExportPROVJSON(w io.Writer, g *Graph) error { return provjson.ExportTo(w, g) }
