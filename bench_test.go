package provio_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark regenerates its exhibit through
// internal/bench and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Set PROVIO_BENCH_SCALE=paper to sweep
// the paper's full parameter ranges (minutes of wall time); the default
// "small" scale keeps every series but shrinks the axes.
//
// Microbenchmarks of the substrate hot paths (RDF insert, Turtle
// serialization, SPARQL evaluation, tracker record cost) follow the
// experiment benchmarks; they are the measurements that cross-check the
// simclock cost-model constants.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	provio "github.com/hpc-io/prov-io"
	"github.com/hpc-io/prov-io/internal/bench"
	"github.com/hpc-io/prov-io/internal/model"
	"github.com/hpc-io/prov-io/internal/rdf"
)

func benchScale() bench.Scale {
	if os.Getenv("PROVIO_BENCH_SCALE") == "paper" {
		return bench.ScalePaper
	}
	return bench.ScaleSmall
}

// runExperiment executes one experiment per benchmark iteration and
// publishes headline metrics parsed from the report.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	scale := benchScale()
	var rep *bench.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = bench.Run(id, scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	publishMetrics(b, rep)
	if b.N == 1 {
		b.Logf("\n%s", rep.Render())
	}
}

// publishMetrics extracts the last row's numeric cells as custom metrics.
func publishMetrics(b *testing.B, rep *bench.Report) {
	if len(rep.Rows) == 0 {
		return
	}
	last := rep.Rows[len(rep.Rows)-1]
	for i, cell := range last {
		if i == 0 || i >= len(rep.Columns) {
			continue
		}
		val := strings.TrimSuffix(cell, "%")
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		name := sanitizeMetric(rep.Columns[i])
		b.ReportMetric(f, name)
	}
}

func sanitizeMetric(col string) string {
	col = strings.ReplaceAll(col, " ", "_")
	col = strings.ReplaceAll(col, "(", "_")
	col = strings.ReplaceAll(col, ")", "")
	return col + "/last"
}

// ---- Tables ----

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// ---- Figure 6: tracking performance ----

func BenchmarkFig6a(b *testing.B) { runExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B) { runExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B) { runExperiment(b, "fig6c") }
func BenchmarkFig6d(b *testing.B) { runExperiment(b, "fig6d") }
func BenchmarkFig6e(b *testing.B) { runExperiment(b, "fig6e") }

// ---- Figure 7: storage ----

func BenchmarkFig7a(b *testing.B) { runExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B) { runExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B) { runExperiment(b, "fig7c") }
func BenchmarkFig7d(b *testing.B) { runExperiment(b, "fig7d") }
func BenchmarkFig7e(b *testing.B) { runExperiment(b, "fig7e") }

// ---- Figure 8: comparison with ProvLake ----

func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// ---- Figure 9: lineage visualization ----

func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// ---- Substrate microbenchmarks (cost-model cross-checks) ----

// BenchmarkRDFInsert measures raw triple insertion into the dictionary-
// encoded graph — the real-world counterpart of CostModel.TrackPerTriple.
func BenchmarkRDFInsert(b *testing.B) {
	g := rdf.NewGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := rdf.IRI(fmt.Sprintf("https://x/e%d", i%100000))
		g.Add(rdf.Triple{S: s, P: rdf.IRI("https://x/p"), O: rdf.Integer(int64(i))})
	}
}

// BenchmarkTrackerRecord measures the full PROV-IO record path (build
// triples + insert + counters) — the counterpart of TrackPerRecord.
func BenchmarkTrackerRecord(b *testing.B) {
	tracker := provio.NewTracker(provio.DefaultConfig(), nil, 0)
	obj := tracker.TrackDataObject(model.Dataset, "/f/d", "", provio.Term{}, provio.Term{})
	agent := tracker.RegisterProgram("p", provio.Term{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker.TrackIO(model.Write, "H5Dwrite", obj, agent, 0, 0)
	}
}

// BenchmarkTurtleSerialize measures Turtle serialization throughput — the
// counterpart of SerializePerTriple.
func BenchmarkTurtleSerialize(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 5000; i++ {
		g.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("https://x/s%d", i%500)),
			P: rdf.IRI(fmt.Sprintf("https://x/p%d", i%7)),
			O: rdf.Literal(fmt.Sprintf("value-%d", i)),
		})
	}
	ns := model.Namespaces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := rdf.WriteTurtle(&sb, g, ns); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(5000, "triples/op")
}

// BenchmarkSPARQLLineage measures the transitive lineage query the user
// engine runs for backward lineage.
func BenchmarkSPARQLLineage(b *testing.B) {
	g := rdf.NewGraph()
	derived := model.WasDerivedFrom.IRI()
	for i := 0; i < 1000; i++ {
		g.Add(rdf.Triple{
			S: rdf.IRI(fmt.Sprintf("https://x/f%d", i)),
			P: derived,
			O: rdf.IRI(fmt.Sprintf("https://x/f%d", i+1)),
		})
	}
	q := `SELECT ?anc WHERE { <https://x/f0> prov:wasDerivedFrom+ ?anc . }`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := provio.Query(g, q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1000 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkStoreMerge measures sub-graph merge (parse + union) over per-
// process Turtle files.
func BenchmarkStoreMerge(b *testing.B) {
	fs := provio.NewMemStore()
	store, err := provio.NewStore(provio.VFSBackend{View: fs.NewView()}, "/prov", provio.FormatTurtle)
	if err != nil {
		b.Fatal(err)
	}
	for pid := 0; pid < 8; pid++ {
		tr := provio.NewTracker(provio.DefaultConfig(), store, pid)
		prog := tr.RegisterProgram("p", provio.Term{})
		for i := 0; i < 200; i++ {
			obj := tr.TrackDataObject(model.File, fmt.Sprintf("/f%d", i), "", provio.Term{}, prog)
			tr.TrackIO(model.Write, "write", obj, prog, 0, 0)
		}
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Merge(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPOSIXWrapperOverhead compares the wrapped and unwrapped write
// paths — the real interposition cost of the syscall wrapper (the GOTCHA
// analog), to contrast with the modeled TrackCost.
func BenchmarkPOSIXWrapperOverhead(b *testing.B) {
	for _, wrapped := range []bool{false, true} {
		name := "raw"
		if wrapped {
			name = "wrapped"
		}
		b.Run(name, func(b *testing.B) {
			fs := provio.NewMemStore()
			view := fs.NewView()
			tracker := provio.NewTracker(provio.DefaultConfig(), nil, 0)
			agent := provio.POSIXAgent{Program: tracker.RegisterProgram("p", provio.Term{})}
			opts := provio.DefaultPOSIXOptions()
			opts.Disabled = !wrapped
			pfs := provio.WrapPOSIX(view, tracker, agent, opts)
			f, err := pfs.Create("/bench.dat")
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			buf := make([]byte, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.WriteAt(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPROVJSONExport measures the W3C PROV-JSON export path.
func BenchmarkPROVJSONExport(b *testing.B) {
	tracker := provio.NewTracker(provio.DefaultConfig(), nil, 0)
	prog := tracker.RegisterProgram("p", provio.Term{})
	for i := 0; i < 500; i++ {
		obj := tracker.TrackDataObject(model.Dataset, fmt.Sprintf("/f/d%d", i), "", provio.Term{}, prog)
		tracker.TrackIO(model.Write, "H5Dwrite", obj, prog, 0, 0)
	}
	g := tracker.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := provio.ExportPROVJSON(&sb, g); err != nil {
			b.Fatal(err)
		}
	}
}
